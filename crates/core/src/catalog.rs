//! The multi-collection catalog: many named encrypted indexes in one
//! process.
//!
//! A production deployment rarely hosts one dataset — each owner ships its
//! own encrypted database, with its own dimensionality and its own privacy
//! / accuracy trade-off (the paper tunes β per dataset). [`Catalog`] owns
//! any number of named **collections**, each a type-erased
//! [`ErasedBackend`] — so a `CloudServer` collection lives next to a
//! `ShardedServer` one behind the same map — and hands out cheaply
//! clonable [`Collection`] handles the service layer routes requests
//! through.
//!
//! ## Concurrency
//!
//! The map itself sits behind one `RwLock`, held only for
//! lookup/insert/remove — never across a search. Handles are `Arc`s, so a
//! collection dropped mid-query finishes the queries already routed to it
//! and is freed when the last handle goes away; new requests get an
//! unknown-collection error.
//!
//! ## Names
//!
//! Collection names double as file stems in a `--data-dir` deployment
//! (`<name>.ppdb`), so [`validate_collection_name`] is deliberately
//! strict: 1–[`MAX_COLLECTION_NAME_LEN`] bytes of lowercase ASCII
//! alphanumerics, `_` and `-` (lowercase-only so names can never
//! case-collide onto one file on a case-insensitive filesystem). The
//! wire protocol carries names as raw bytes precisely so a malformed
//! name can travel to this check and be answered as a semantic error
//! (PROTOCOL.md §4 "Collections").

use crate::backend::{BackendKind, ErasedBackend};
use crate::concurrent::SharedServer;
use crate::index::EncryptedDatabase;
use crate::persist::{load_snapshot, PersistError, SNAPSHOT_EXT};
use crate::query::EncryptedQuery;
use crate::server::{CloudServer, SearchOutcome, SearchParams};
use crate::shard::ShardedServer;
use parking_lot::RwLock;
use ppann_dce::DceCiphertext;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// The collection legacy (v1, nameless) protocol frames route to.
pub const DEFAULT_COLLECTION: &str = "default";

/// Maximum collection-name length in bytes.
pub const MAX_COLLECTION_NAME_LEN: usize = 64;

/// Maximum shard fan-out a collection may declare, whether it arrives
/// over the wire (`CreateCollection`, PROTOCOL.md §3.17) or embedded in
/// a v2 snapshot ([`Catalog::load_dir`]). Each shard builds its own
/// index on its own thread, so an unbounded count is a resource bomb —
/// a corrupt snapshot demanding 65535 shards must fail as
/// [`PersistError::Corrupt`], not abort startup mid-thread-spawn.
pub const MAX_SHARDS: usize = 64;

/// Catalog failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The name violates [`validate_collection_name`] (reason attached).
    InvalidName(String),
    /// A collection with this name already exists.
    Duplicate(String),
    /// No collection with this name exists.
    Unknown(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::InvalidName(msg) => write!(f, "invalid collection name: {msg}"),
            CatalogError::Duplicate(name) => write!(f, "collection `{name}` already exists"),
            CatalogError::Unknown(name) => write!(f, "unknown collection `{name}`"),
        }
    }
}
impl std::error::Error for CatalogError {}

/// Validates a collection name: 1–[`MAX_COLLECTION_NAME_LEN`] bytes,
/// *lowercase* ASCII alphanumerics plus `_` and `-` only. Strict because
/// names double as snapshot file stems (`<name>.ppdb`) — no separators,
/// no dots, and lowercase-only so two distinct catalog entries can never
/// case-collide onto one file on a case-insensitive filesystem (where
/// `Docs.ppdb` and `docs.ppdb` are the same file and each create would
/// truncate the other's snapshot).
pub fn validate_collection_name(name: &str) -> Result<(), CatalogError> {
    if name.is_empty() {
        return Err(CatalogError::InvalidName("name is empty".into()));
    }
    if name.len() > MAX_COLLECTION_NAME_LEN {
        return Err(CatalogError::InvalidName(format!(
            "name of {} bytes exceeds the {MAX_COLLECTION_NAME_LEN}-byte limit",
            name.len()
        )));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !c.is_ascii_lowercase() && !c.is_ascii_digit() && *c != '_' && *c != '-')
    {
        return Err(CatalogError::InvalidName(format!(
            "character {bad:?} not allowed (lowercase ASCII alphanumerics, `_` and `-` only)"
        )));
    }
    Ok(())
}

/// One named collection: a validated name plus its type-erased backend.
pub struct Collection {
    name: String,
    /// Cached at registration: a backend's dimensionality never changes
    /// (inserts are dim-checked against it), so the hot request path
    /// reads a field instead of taking the backend's lock per frame.
    dim: usize,
    /// Cached at registration, immutable for the collection's lifetime.
    kind: BackendKind,
    backend: Box<dyn ErasedBackend>,
}

impl Collection {
    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vector dimensionality served.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The backend's shape.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Live vector count.
    pub fn live_len(&self) -> usize {
        self.backend.live_len()
    }

    /// Answers one query.
    pub fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        self.backend.search(query, params)
    }

    /// Answers a batch, fanning across up to `threads` workers
    /// (input order preserved).
    pub fn search_many(
        &self,
        queries: &[EncryptedQuery],
        params: &SearchParams,
        threads: usize,
    ) -> Vec<SearchOutcome> {
        self.backend.search_many(queries, params, threads)
    }

    /// Inserts a pre-encrypted vector, returning its assigned id.
    pub fn insert(&self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32 {
        self.backend.insert(c_sap, c_dce)
    }

    /// Check-and-delete under one exclusive lock; `false` leaves the
    /// backend untouched.
    pub fn try_delete(&self, id: u32) -> bool {
        self.backend.try_delete(id)
    }

    /// Whether `id` names a live vector.
    pub fn is_live(&self, id: u32) -> bool {
        self.backend.is_live(id)
    }
}

impl crate::backend::QueryBackend for Collection {
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        Collection::search(self, query, params)
    }
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection")
            .field("name", &self.name)
            .field("dim", &self.dim())
            .field("kind", &self.kind())
            .field("live", &self.live_len())
            .finish()
    }
}

/// A point-in-time description of one collection, as listed by
/// [`Catalog::list`] and shipped in the service's `ListCollectionsReply`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectionInfo {
    /// Collection name.
    pub name: String,
    /// Vector dimensionality served.
    pub dim: usize,
    /// Live vector count at listing time.
    pub live: usize,
    /// Backend shape.
    pub kind: BackendKind,
}

/// Many named collections behind one lock (see the module docs).
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<BTreeMap<String, Arc<Collection>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a collection under `name`. Fails on an invalid or
    /// already-taken name; name reservation is atomic, so two concurrent
    /// creates of the same name cannot both succeed.
    pub fn create(
        &self,
        name: &str,
        backend: Box<dyn ErasedBackend>,
    ) -> Result<Arc<Collection>, CatalogError> {
        validate_collection_name(name)?;
        let mut map = self.inner.write();
        if map.contains_key(name) {
            return Err(CatalogError::Duplicate(name.to_string()));
        }
        let coll = Arc::new(Collection {
            name: name.to_string(),
            dim: backend.dim(),
            kind: backend.kind(),
            backend,
        });
        map.insert(name.to_string(), Arc::clone(&coll));
        Ok(coll)
    }

    /// Registers `db` as a single-index [`CloudServer`] collection.
    pub fn create_cloud(
        &self,
        name: &str,
        db: EncryptedDatabase,
    ) -> Result<Arc<Collection>, CatalogError> {
        self.create(name, Box::new(SharedServer::new(CloudServer::new(db))))
    }

    /// Registers `db` re-partitioned into a [`ShardedServer`] collection
    /// of `shards` shards (clamped to ≥ 1; 1 shard builds a `CloudServer`
    /// instead, the cheaper identical-result shape).
    pub fn create_sharded(
        &self,
        name: &str,
        db: EncryptedDatabase,
        shards: usize,
    ) -> Result<Arc<Collection>, CatalogError> {
        if shards <= 1 {
            return self.create_cloud(name, db);
        }
        self.create(name, Box::new(SharedServer::new(ShardedServer::from_database(db, shards))))
    }

    /// Removes and returns the collection named `name`. In-flight queries
    /// holding the handle finish normally; the backend is freed when the
    /// last handle drops.
    pub fn drop_collection(&self, name: &str) -> Result<Arc<Collection>, CatalogError> {
        validate_collection_name(name)?;
        self.inner.write().remove(name).ok_or_else(|| CatalogError::Unknown(name.to_string()))
    }

    /// The collection named `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<Collection>> {
        self.inner.read().get(name).cloned()
    }

    /// The collection legacy nameless frames route to
    /// ([`DEFAULT_COLLECTION`]).
    pub fn default_collection(&self) -> Option<Arc<Collection>> {
        self.get(DEFAULT_COLLECTION)
    }

    /// All collections, sorted by name.
    pub fn list(&self) -> Vec<CollectionInfo> {
        self.inner
            .read()
            .values()
            .map(|c| CollectionInfo {
                name: c.name().to_string(),
                dim: c.dim(),
                live: c.live_len(),
                kind: c.kind(),
            })
            .collect()
    }

    /// Number of collections.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no collection is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Total live vectors across every collection.
    pub fn total_live(&self) -> usize {
        self.inner.read().values().map(|c| c.live_len()).sum()
    }

    /// Builds a catalog from a snapshot directory: every `*.ppdb` file
    /// becomes one collection named after its file stem, loaded in sorted
    /// order. v2 snapshots must embed the same name as their stem (a
    /// renamed file is refused rather than silently re-labeled) and carry
    /// their shard count; v1 snapshots load as single-index `CloudServer`
    /// collections — the back-compat path for databases written before
    /// collections existed.
    pub fn load_dir(dir: &Path) -> Result<Self, PersistError> {
        let catalog = Self::new();
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT))
            .collect();
        paths.sort();
        for path in paths {
            let corrupt = |msg: String| PersistError::Corrupt(format!("{}: {msg}", path.display()));
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| corrupt("file stem is not UTF-8".into()))?
                .to_string();
            validate_collection_name(&stem).map_err(|e| corrupt(e.to_string()))?;
            let (meta, db) = load_snapshot(&path).map_err(|e| corrupt(e.to_string()))?;
            let shards = match meta {
                Some(meta) => {
                    if meta.name != stem {
                        return Err(corrupt(format!(
                            "embedded collection name `{}` does not match the file stem",
                            meta.name
                        )));
                    }
                    if meta.shards == 0 || meta.shards as usize > MAX_SHARDS {
                        return Err(corrupt(format!(
                            "shard count {} outside 1..={MAX_SHARDS}",
                            meta.shards
                        )));
                    }
                    meta.shards as usize
                }
                None => 1,
            };
            catalog.create_sharded(&stem, db, shards).map_err(|e| corrupt(e.to_string()))?;
        }
        Ok(catalog)
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.inner.read();
        f.debug_struct("Catalog").field("collections", &map.keys().collect::<Vec<_>>()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::{DataOwner, PpAnnParams};
    use crate::persist::{save_collection_snapshot, CollectionMeta};
    use ppann_linalg::{seeded_rng, uniform_vec};

    fn make_db(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, DataOwner, EncryptedDatabase) {
        let mut rng = seeded_rng(seed);
        let data: Vec<Vec<f64>> = (0..n).map(|_| uniform_vec(&mut rng, dim, -1.0, 1.0)).collect();
        let owner = DataOwner::setup(PpAnnParams::new(dim).with_seed(seed).with_beta(0.0), &data);
        let db = owner.outsource(&data);
        (data, owner, db)
    }

    #[test]
    fn name_validation() {
        for ok in ["default", "a", "a-1_b", &"x".repeat(MAX_COLLECTION_NAME_LEN)] {
            assert!(validate_collection_name(ok).is_ok(), "{ok} should be valid");
        }
        // "Docs" is refused: on a case-insensitive filesystem it would
        // share `docs.ppdb` with a lowercase sibling.
        for bad in
            ["", "a/b", "a.b", "a b", "naïve", "Docs", &"x".repeat(MAX_COLLECTION_NAME_LEN + 1)]
        {
            assert!(validate_collection_name(bad).is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn heterogeneous_collections_coexist_and_answer() {
        let (data_a, owner_a, db_a) = make_db(120, 4, 31);
        let (data_b, owner_b, db_b) = make_db(150, 6, 32);
        let catalog = Catalog::new();
        catalog.create_cloud("products", db_a).unwrap();
        catalog.create_sharded("docs", db_b, 3).unwrap();

        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.total_live(), 270);
        let infos = catalog.list();
        assert_eq!(infos[0].name, "docs");
        assert_eq!(infos[0].dim, 6);
        assert_eq!(infos[0].kind, BackendKind::Sharded { shards: 3 });
        assert_eq!(infos[1].name, "products");
        assert_eq!(infos[1].kind, BackendKind::Cloud);

        let products = catalog.get("products").unwrap();
        let docs = catalog.get("docs").unwrap();
        let params = SearchParams { k_prime: 15, ef_search: 30 };
        let mut user_a = owner_a.authorize_user();
        let out = products.search(&user_a.encrypt_query(&data_a[0], 3), &params);
        assert_eq!(out.ids.len(), 3);
        assert_eq!(out.ids[0], 0);
        let mut user_b = owner_b.authorize_user();
        let outs = docs.search_many(
            &[user_b.encrypt_query(&data_b[1], 2), user_b.encrypt_query(&data_b[2], 2)],
            &params,
            2,
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].ids[0], 1);
        assert_eq!(outs[1].ids[0], 2);
    }

    #[test]
    fn duplicate_and_unknown_names_are_errors() {
        let (_, _, db) = make_db(30, 4, 33);
        let catalog = Catalog::new();
        catalog.create_cloud("default", db).unwrap();
        let (_, _, db2) = make_db(30, 4, 34);
        assert_eq!(
            catalog.create_cloud("default", db2).unwrap_err(),
            CatalogError::Duplicate("default".into())
        );
        assert_eq!(
            catalog.drop_collection("nope").unwrap_err(),
            CatalogError::Unknown("nope".into())
        );
        assert!(matches!(
            catalog.drop_collection("no/pe").unwrap_err(),
            CatalogError::InvalidName(_)
        ));
        catalog.drop_collection("default").unwrap();
        assert!(catalog.is_empty());
    }

    #[test]
    fn dropped_collection_handle_stays_usable() {
        let (data, owner, db) = make_db(80, 4, 35);
        let catalog = Catalog::new();
        let handle = catalog.create_cloud("ephemeral", db).unwrap();
        catalog.drop_collection("ephemeral").unwrap();
        assert!(catalog.get("ephemeral").is_none());
        // The held Arc still answers: in-flight queries never race a drop.
        let mut user = owner.authorize_user();
        let out = handle
            .search(&user.encrypt_query(&data[5], 2), &SearchParams { k_prime: 10, ef_search: 20 });
        assert_eq!(out.ids[0], 5);
    }

    #[test]
    fn maintenance_through_the_erased_handle() {
        let (_, owner, db) = make_db(40, 4, 36);
        let catalog = Catalog::new();
        let coll = catalog.create_sharded("m", db, 2).unwrap();
        let novel = vec![6.0, 6.0, 6.0, 6.0];
        let (c_sap, c_dce) = owner.encrypt_for_insert(&novel, 1);
        let id = coll.insert(c_sap, c_dce);
        assert_eq!(id, 40);
        assert!(coll.is_live(id));
        assert_eq!(coll.live_len(), 41);
        assert!(coll.try_delete(id));
        assert!(!coll.try_delete(id), "second delete must refuse");
        assert_eq!(coll.live_len(), 40);
    }

    #[test]
    fn load_dir_mixes_v1_and_v2_snapshots() {
        let dir = std::env::temp_dir().join(format!("ppanns_catalog_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_, _, db_v1) = make_db(25, 4, 37);
        db_v1.save_to(&dir.join("legacy.ppdb")).unwrap();
        let (_, _, db_v2) = make_db(35, 6, 38);
        save_collection_snapshot(
            &dir.join("wide.ppdb"),
            &CollectionMeta { name: "wide".into(), shards: 2 },
            &db_v2,
        )
        .unwrap();
        // Non-snapshot files are ignored.
        std::fs::write(dir.join("notes.txt"), b"not a snapshot").unwrap();

        let catalog = Catalog::load_dir(&dir).unwrap();
        assert_eq!(catalog.len(), 2);
        let legacy = catalog.get("legacy").unwrap();
        assert_eq!(legacy.dim(), 4);
        assert_eq!(legacy.live_len(), 25);
        assert_eq!(legacy.kind(), BackendKind::Cloud);
        let wide = catalog.get("wide").unwrap();
        assert_eq!(wide.dim(), 6);
        assert_eq!(wide.kind(), BackendKind::Sharded { shards: 2 });

        // A v2 snapshot renamed away from its embedded name is refused.
        std::fs::rename(dir.join("wide.ppdb"), dir.join("renamed.ppdb")).unwrap();
        assert!(Catalog::load_dir(&dir).is_err(), "renamed v2 snapshot must be refused");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_refuses_absurd_shard_counts() {
        // A corrupt (or hand-crafted) v2 snapshot demanding u16::MAX
        // shards must surface as PersistError::Corrupt, not spawn 65535
        // index-build threads at startup. The wire CreateCollection path
        // enforces the same MAX_SHARDS bound.
        let dir =
            std::env::temp_dir().join(format!("ppanns_catalog_shards_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_, _, db) = make_db(10, 4, 40);
        for bad in [0u16, (MAX_SHARDS + 1) as u16, u16::MAX] {
            save_collection_snapshot(
                &dir.join("bomb.ppdb"),
                &CollectionMeta { name: "bomb".into(), shards: bad },
                &db,
            )
            .unwrap();
            let err = Catalog::load_dir(&dir).unwrap_err();
            assert!(
                matches!(&err, PersistError::Corrupt(msg) if msg.contains("shard count")),
                "shards={bad}: expected Corrupt shard-count error, got {err:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_database_collections_accept_inserts() {
        let catalog = Catalog::new();
        let coll = catalog.create_sharded("fresh", EncryptedDatabase::empty(4), 2).unwrap();
        assert_eq!(coll.live_len(), 0);
        assert_eq!(coll.dim(), 4);
        // Populate through the erased handle, then search.
        let data = vec![vec![0.1, 0.2, 0.3, 0.4], vec![0.9, 0.8, 0.7, 0.6]];
        let owner = DataOwner::setup(PpAnnParams::new(4).with_seed(39).with_beta(0.0), &data);
        for v in &data {
            let (c_sap, c_dce) = owner.encrypt_for_insert(v, 1);
            coll.insert(c_sap, c_dce);
        }
        assert_eq!(coll.live_len(), 2);
        let mut user = owner.authorize_user();
        let out = coll
            .search(&user.encrypt_query(&data[1], 1), &SearchParams { k_prime: 4, ef_search: 8 });
        assert_eq!(out.ids, vec![1]);
    }
}
