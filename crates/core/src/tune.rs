//! Search-parameter tuning (paper Section V-B: "In practice, we employ the
//! grid search method to select the best value of k′").
//!
//! Given a server, a user, a tuning query set with ground truth and a target
//! recall, [`grid_search`] walks a (Ratio_k × efSearch) grid and returns the
//! highest-throughput configuration meeting the target. The data owner runs
//! this offline on a held-out query sample before going live.

use crate::query::EncryptedQuery;
use crate::server::{CloudServer, SearchParams};
use crate::user::QueryUser;
use std::time::Instant;

/// The tuning grid. Defaults mirror the sweeps of Figures 4–5.
#[derive(Clone, Debug)]
pub struct TuningGrid {
    /// Candidate `Ratio_k = k′/k` multipliers.
    pub ratios: Vec<usize>,
    /// Candidate `efSearch` floors (the effective beam is
    /// `max(ef, k·ratio)`).
    pub ef_search: Vec<usize>,
}

impl Default for TuningGrid {
    fn default() -> Self {
        Self { ratios: vec![1, 2, 4, 8, 16, 32, 64, 128], ef_search: vec![40, 80, 160, 320] }
    }
}

/// One evaluated grid point.
#[derive(Clone, Copy, Debug)]
pub struct TuningPoint {
    /// The configuration evaluated.
    pub params: SearchParams,
    /// Mean Recall@k over the tuning queries.
    pub recall: f64,
    /// Throughput over the tuning queries (single-threaded).
    pub qps: f64,
}

/// Result of a grid search.
#[derive(Clone, Debug)]
pub struct TuningOutcome {
    /// The best configuration meeting the target (highest QPS), if any.
    pub best: Option<TuningPoint>,
    /// Every evaluated point, for diagnostics.
    pub evaluated: Vec<TuningPoint>,
}

/// Runs the grid search. `truth[i]` must hold the exact k-NN ids of
/// `queries[i]`; `k` is the production k. Single-threaded, like the
/// measurements it calibrates.
pub fn grid_search(
    server: &CloudServer,
    user: &mut QueryUser,
    queries: &[Vec<f64>],
    truth: &[Vec<u32>],
    k: usize,
    target_recall: f64,
    grid: &TuningGrid,
) -> TuningOutcome {
    assert_eq!(queries.len(), truth.len(), "queries/truth length mismatch");
    let encrypted: Vec<EncryptedQuery> = queries.iter().map(|q| user.encrypt_query(q, k)).collect();

    let mut evaluated = Vec::new();
    let mut best: Option<TuningPoint> = None;
    for &ratio in &grid.ratios {
        for &ef in &grid.ef_search {
            let params = SearchParams::from_ratio(k, ratio, ef.max(k * ratio));
            let started = Instant::now();
            let mut recall_sum = 0.0;
            for (enc, t) in encrypted.iter().zip(truth) {
                let out = server.search(enc, &params);
                recall_sum += recall(t, &out.ids);
            }
            let elapsed = started.elapsed().as_secs_f64().max(1e-12);
            let point = TuningPoint {
                params,
                recall: recall_sum / encrypted.len().max(1) as f64,
                qps: encrypted.len() as f64 / elapsed,
            };
            evaluated.push(point);
            if point.recall >= target_recall && best.is_none_or(|b| point.qps > b.qps) {
                best = Some(point);
            }
        }
    }
    TuningOutcome { best, evaluated }
}

fn recall(truth: &[u32], got: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    truth.iter().filter(|t| got.contains(t)).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::{DataOwner, PpAnnParams};
    use ppann_linalg::{seeded_rng, uniform_vec, vector};

    fn exact_knn(base: &[Vec<f64>], q: &[f64], k: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..base.len() as u32).collect();
        ids.sort_by(|&a, &b| {
            vector::squared_euclidean(&base[a as usize], q)
                .partial_cmp(&vector::squared_euclidean(&base[b as usize], q))
                .unwrap()
        });
        ids.truncate(k);
        ids
    }

    #[test]
    fn grid_search_meets_target() {
        let mut rng = seeded_rng(501);
        let data: Vec<Vec<f64>> = (0..600).map(|_| uniform_vec(&mut rng, 8, -1.0, 1.0)).collect();
        let owner = DataOwner::setup(PpAnnParams::new(8).with_beta(1.5).with_seed(1), &data);
        let server = CloudServer::new(owner.outsource(&data));
        let mut user = owner.authorize_user();
        let queries: Vec<Vec<f64>> = data[..10].to_vec();
        let truth: Vec<Vec<u32>> = queries.iter().map(|q| exact_knn(&data, q, 5)).collect();

        let grid = TuningGrid { ratios: vec![1, 8, 32], ef_search: vec![40, 160] };
        let outcome = grid_search(&server, &mut user, &queries, &truth, 5, 0.9, &grid);
        let best = outcome.best.expect("some configuration must reach 0.9");
        assert!(best.recall >= 0.9);
        assert_eq!(outcome.evaluated.len(), 6);
        // The chosen point must be the fastest among qualifying ones.
        for p in &outcome.evaluated {
            if p.recall >= 0.9 {
                assert!(best.qps >= p.qps);
            }
        }
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut rng = seeded_rng(502);
        let data: Vec<Vec<f64>> = (0..100).map(|_| uniform_vec(&mut rng, 4, -1.0, 1.0)).collect();
        // Absurd noise: β far beyond the admissible range ⇒ low ceiling.
        let owner = DataOwner::setup(PpAnnParams::new(4).with_beta(50.0).with_seed(2), &data);
        let server = CloudServer::new(owner.outsource(&data));
        let mut user = owner.authorize_user();
        let queries: Vec<Vec<f64>> = data[..5].to_vec();
        let truth: Vec<Vec<u32>> = queries.iter().map(|q| exact_knn(&data, q, 5)).collect();
        let grid = TuningGrid { ratios: vec![1], ef_search: vec![20] };
        let outcome = grid_search(&server, &mut user, &queries, &truth, 5, 0.999, &grid);
        assert!(outcome.best.is_none());
        assert!(!outcome.evaluated.is_empty());
    }
}
