//! The encrypted database the cloud stores: SAP ciphertexts inside the HNSW
//! index, plus the aligned DCE ciphertexts (paper Figure 3, `B1`/`B2`).

use ppann_dce::DceCiphertext;
use ppann_hnsw::Hnsw;
use ppann_linalg::vector;

/// Everything the server holds: the HNSW graph whose `VecStore` contains the
/// SAP ciphertexts, and one DCE ciphertext per vector, aligned by id.
pub struct EncryptedDatabase {
    hnsw: Hnsw,
    dce: Vec<DceCiphertext>,
}

impl EncryptedDatabase {
    /// Assembles a database; ids of the HNSW store and the DCE list must
    /// align (they do by construction in [`crate::DataOwner::outsource`]).
    pub fn new(hnsw: Hnsw, dce: Vec<DceCiphertext>) -> Self {
        assert_eq!(
            hnsw.capacity_slots(),
            dce.len(),
            "HNSW store and DCE ciphertext list must align"
        );
        Self { hnsw, dce }
    }

    /// An empty database of dimensionality `dim` (default HNSW build
    /// parameters): the starting point of a collection created over the
    /// wire, which the owner then populates with pre-encrypted
    /// [`Self::insert`]s.
    pub fn empty(dim: usize) -> Self {
        Self::new(Hnsw::build(dim, ppann_hnsw::HnswParams::default(), &[]), Vec::new())
    }

    /// Number of live vectors.
    pub fn len(&self) -> usize {
        self.hnsw.len()
    }

    /// Vector dimensionality stored (SAP-ciphertext width).
    pub fn dim(&self) -> usize {
        self.hnsw.dim()
    }

    /// True when the database holds no live vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The filter index.
    pub fn hnsw(&self) -> &Hnsw {
        &self.hnsw
    }

    /// The aligned DCE ciphertexts.
    pub fn dce_ciphertexts(&self) -> &[DceCiphertext] {
        &self.dce
    }

    /// Whether `id` names a live (in-range, not tombstoned) vector.
    pub fn is_live(&self, id: u32) -> bool {
        (id as usize) < self.hnsw.capacity_slots() && !self.hnsw.is_deleted(id)
    }

    /// Encrypted-space distances between a query's SAP ciphertext and the
    /// stored SAP ciphertexts of `ids` (see
    /// [`SearchOutcome::sap_dists`](crate::SearchOutcome::sap_dists)).
    pub fn sap_distances(&self, c_sap_query: &[f64], ids: &[u32]) -> Vec<f64> {
        let store = self.hnsw.store();
        ids.iter().map(|&id| vector::squared_euclidean(c_sap_query, store.get(id))).collect()
    }

    /// Inserts a pre-encrypted vector (server-side half of the paper's
    /// Section V-D insertion: the owner encrypted, the server wires the
    /// graph). Returns the assigned id.
    pub fn insert(&mut self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32 {
        let id = self.hnsw.insert(&c_sap);
        debug_assert_eq!(id as usize, self.dce.len());
        self.dce.push(c_dce);
        id
    }

    /// Deletes a vector by id; the HNSW repair runs entirely server-side
    /// (paper: "the deletion could be finished solely by the server").
    pub fn delete(&mut self, id: u32) {
        self.hnsw.delete(id);
        // The DCE ciphertext slot is retained as a tombstone so ids stay
        // aligned; the filter phase never returns deleted ids.
    }

    /// Decomposes the database into its index and ciphertext list.
    pub fn into_parts(self) -> (Hnsw, Vec<DceCiphertext>) {
        (self.hnsw, self.dce)
    }
}

impl std::fmt::Debug for EncryptedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedDatabase")
            .field("live", &self.len())
            .field("slots", &self.hnsw.capacity_slots())
            .finish_non_exhaustive()
    }
}
