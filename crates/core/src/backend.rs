//! Server backend abstractions.
//!
//! The scheme has grown several server shapes — the paper's single-threaded
//! [`CloudServer`](crate::CloudServer), the lock-wrapped
//! [`SharedServer`](crate::SharedServer), and the multi-core
//! [`ShardedServer`](crate::ShardedServer) — that all answer the same
//! encrypted query message. These traits name the capabilities the rest
//! of the stack composes over: answering queries ([`QueryBackend`], what
//! [`BatchExecutor`](crate::BatchExecutor) fans out over), owner-driven
//! index maintenance ([`MaintainableServer`], what
//! [`SharedServer`](crate::SharedServer) serializes behind its write lock),
//! and self-description ([`BackendInfo`], what the multi-collection
//! [`Catalog`](crate::Catalog) reports per collection).
//!
//! ## Compile-time generics vs type erasure
//!
//! `SharedServer<S>`, `BatchExecutor<B>` and the generic `serve<S>` entry
//! points are monomorphized per backend — the right call for a process
//! hosting exactly one index, where the shape is a compile-time fact. A
//! multi-collection process cannot be: one catalog holds a `CloudServer`
//! collection next to a `ShardedServer` one, so the request path needs one
//! runtime type for "any backend". [`ErasedBackend`] is that type — the
//! full per-collection capability set (search, batched search,
//! maintenance, stats inputs) behind one vtable, implemented once for
//! every `SharedServer<S>` composition so erasure inherits the locking
//! discipline instead of re-implementing it. DESIGN.md §4 discusses the
//! trade-off.

use crate::query::EncryptedQuery;
use crate::scratch::QueryScratch;
use crate::server::{SearchOutcome, SearchParams};
use ppann_dce::DceCiphertext;

/// Anything that can answer one encrypted k-ANN query.
///
/// `Sync` is a supertrait because every implementor is queried from
/// concurrent workers ([`BatchExecutor`](crate::BatchExecutor) borrows one
/// backend from all of its threads).
pub trait QueryBackend: Sync {
    /// Answers one query (paper Algorithm 2: filter then refine).
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome;

    /// [`Self::search`] through caller-owned scratch, for long-lived
    /// workers that answer many queries: a warm scratch makes the whole
    /// filter-and-refine pipeline allocation-free except for the returned
    /// outcome. Results are bitwise identical to [`Self::search`] for any
    /// scratch state (the pooling determinism contract, DESIGN.md §6).
    ///
    /// Blanket-defaulted to plain `search` so existing backends keep
    /// working; the built-in backends override it with real reuse.
    fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        let _ = scratch;
        self.search(query, params)
    }
}

impl<B: QueryBackend + ?Sized> QueryBackend for &B {
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        (**self).search(query, params)
    }

    fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        (**self).search_in(scratch, query, params)
    }
}

/// Server-side index maintenance (paper Section V-D): the owner encrypts,
/// the server wires its structures.
pub trait MaintainableServer {
    /// Inserts a pre-encrypted vector, returning its assigned id.
    fn insert(&mut self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32;

    /// Deletes a vector by id (graph repair runs server-side).
    ///
    /// Implementations panic on an out-of-range or already-deleted id, so
    /// caller bugs surface identically across backends. Remote callers that
    /// must not panic (the service layer answers bad ids with an error
    /// frame) check [`Self::is_live`] first — see
    /// [`SharedServer::try_delete`](crate::SharedServer::try_delete), which
    /// does both under one exclusive lock.
    fn delete(&mut self, id: u32);

    /// Whether `id` names a live (in-range, not yet deleted) vector, i.e.
    /// whether [`Self::delete`] would succeed.
    fn is_live(&self, id: u32) -> bool;

    /// Number of live vectors served.
    fn live_len(&self) -> usize;

    /// Total id slots allocated, live or tombstoned — equivalently, the
    /// id the *next* [`Self::insert`] will assign. The write-ahead log
    /// uses this to record an insert's id before applying it.
    fn slots(&self) -> usize;
}

/// A backend that can serialize its complete current state as a v1
/// `PPDB` database image (`persist` module) — what WAL compaction
/// wraps into a fresh collection snapshot.
pub trait SnapshotSource {
    /// The full database image, bit-equal to what loading the snapshot
    /// and re-applying every logged mutation would produce.
    fn database_image(&self) -> bytes::Bytes;
}

/// The shape of a server backend, as reported per collection by the
/// [`Catalog`](crate::Catalog) and the service's `ListCollections` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The paper's single-index [`CloudServer`](crate::CloudServer).
    Cloud,
    /// A [`ShardedServer`](crate::ShardedServer) fanning each query's
    /// filter phase across `shards` threads.
    Sharded {
        /// Number of shards the database is partitioned into.
        shards: u16,
    },
}

impl BackendKind {
    /// Human-readable shape name (`"cloud"` / `"sharded"`).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Cloud => "cloud",
            BackendKind::Sharded { .. } => "sharded",
        }
    }

    /// Shard count: 1 for [`BackendKind::Cloud`].
    pub fn shards(&self) -> u16 {
        match self {
            BackendKind::Cloud => 1,
            BackendKind::Sharded { shards } => *shards,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Cloud => f.write_str("cloud"),
            BackendKind::Sharded { shards } => write!(f, "sharded({shards})"),
        }
    }
}

/// Static facts about a server backend: the dimensionality it serves and
/// its shape. What a [`Catalog`](crate::Catalog) needs to describe a
/// collection and what the service layer needs to validate queries
/// per-collection instead of per-process.
pub trait BackendInfo {
    /// Vector dimensionality served (SAP-ciphertext width).
    fn dim(&self) -> usize;

    /// The backend's shape.
    fn kind(&self) -> BackendKind;
}

/// One type for "any collection backend": the full per-collection
/// capability set — search, batched search, owner maintenance, liveness,
/// self-description — behind a single vtable, so a
/// [`Catalog`](crate::Catalog) can hold a `CloudServer` collection next to
/// a `ShardedServer` one in the same map.
///
/// All methods take `&self`, including the mutating ones: the one blanket
/// implementation is over [`SharedServer<S>`](crate::SharedServer), whose
/// interior `RwLock` already serializes maintenance against concurrent
/// searches — erasure inherits that locking discipline rather than
/// inventing a second one.
pub trait ErasedBackend: Send + Sync {
    /// Answers one query (paper Algorithm 2: filter then refine).
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome;

    /// Answers one query through caller-owned scratch
    /// ([`QueryBackend::search_in`] semantics: bitwise identical to
    /// [`Self::search`], allocation-free when warm).
    fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome;

    /// Answers a batch of queries, fanning across up to `threads` workers
    /// ([`BatchExecutor`](crate::BatchExecutor) semantics: result order
    /// preserved, fan-out clamped to the batch size, single-thread batches
    /// run inline). Outcomes are in input order.
    fn search_many(
        &self,
        queries: &[EncryptedQuery],
        params: &SearchParams,
        threads: usize,
    ) -> Vec<SearchOutcome>;

    /// Inserts a pre-encrypted vector under the exclusive lock, returning
    /// its assigned id.
    fn insert(&self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32;

    /// Check-and-delete under one exclusive lock: `false` (backend
    /// untouched) when `id` is out of range or already deleted — the
    /// panic-free entry point remote callers need.
    fn try_delete(&self, id: u32) -> bool;

    /// Whether `id` names a live vector.
    fn is_live(&self, id: u32) -> bool;

    /// Number of live vectors served.
    fn live_len(&self) -> usize;

    /// Total id slots allocated ([`MaintainableServer::slots`]): the id
    /// the next insert will assign.
    fn slots(&self) -> usize;

    /// Serializes the backend's complete state as a v1 `PPDB` database
    /// image ([`SnapshotSource::database_image`]), under the shared
    /// lock — what compaction folds into a fresh snapshot.
    fn database_image(&self) -> bytes::Bytes;

    /// Vector dimensionality served.
    fn dim(&self) -> usize;

    /// The backend's shape.
    fn kind(&self) -> BackendKind;
}
