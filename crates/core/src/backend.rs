//! Server backend abstractions.
//!
//! The scheme has grown several server shapes — the paper's single-threaded
//! [`CloudServer`](crate::CloudServer), the lock-wrapped
//! [`SharedServer`](crate::SharedServer), and the multi-core
//! [`ShardedServer`](crate::ShardedServer) — that all answer the same
//! encrypted query message. These traits name the two capabilities the rest
//! of the stack composes over: answering queries ([`QueryBackend`], what
//! [`BatchExecutor`](crate::BatchExecutor) fans out over) and owner-driven
//! index maintenance ([`MaintainableServer`], what
//! [`SharedServer`](crate::SharedServer) serializes behind its write lock).

use crate::query::EncryptedQuery;
use crate::server::{SearchOutcome, SearchParams};
use ppann_dce::DceCiphertext;

/// Anything that can answer one encrypted k-ANN query.
///
/// `Sync` is a supertrait because every implementor is queried from
/// concurrent workers ([`BatchExecutor`](crate::BatchExecutor) borrows one
/// backend from all of its threads).
pub trait QueryBackend: Sync {
    /// Answers one query (paper Algorithm 2: filter then refine).
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome;
}

impl<B: QueryBackend + ?Sized> QueryBackend for &B {
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        (**self).search(query, params)
    }
}

/// Server-side index maintenance (paper Section V-D): the owner encrypts,
/// the server wires its structures.
pub trait MaintainableServer {
    /// Inserts a pre-encrypted vector, returning its assigned id.
    fn insert(&mut self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32;

    /// Deletes a vector by id (graph repair runs server-side).
    ///
    /// Implementations panic on an out-of-range or already-deleted id, so
    /// caller bugs surface identically across backends. Remote callers that
    /// must not panic (the service layer answers bad ids with an error
    /// frame) check [`Self::is_live`] first — see
    /// [`SharedServer::try_delete`](crate::SharedServer::try_delete), which
    /// does both under one exclusive lock.
    fn delete(&mut self, id: u32);

    /// Whether `id` names a live (in-range, not yet deleted) vector, i.e.
    /// whether [`Self::delete`] would succeed.
    fn is_live(&self, id: u32) -> bool;

    /// Number of live vectors served.
    fn live_len(&self) -> usize;
}
