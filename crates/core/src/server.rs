//! The cloud server: filter-and-refine search (paper Algorithm 2) plus
//! server-side index maintenance.

use crate::cost::QueryCost;
use crate::heap::SecureTopK;
use crate::index::EncryptedDatabase;
use crate::query::EncryptedQuery;
use crate::scratch::{QueryScratch, QueryScratchPool};
use ppann_dce::DceCiphertext;
use std::time::Instant;

/// Per-query search knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchParams {
    /// Number of filter-phase candidates `k′` (`k′ = Ratio_k · k`; the
    /// paper grid-searches `Ratio_k` per target recall, Figure 5).
    pub k_prime: usize,
    /// HNSW beam width `efSearch` for the filter phase.
    pub ef_search: usize,
}

impl SearchParams {
    /// Builds parameters from the paper's `Ratio_k` convention.
    pub fn from_ratio(k: usize, ratio_k: usize, ef_search: usize) -> Self {
        Self { k_prime: k * ratio_k, ef_search }
    }
}

/// The result of one query.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The k result ids, closest first.
    pub ids: Vec<u32>,
    /// Per-id **encrypted-space** distance: the squared Euclidean distance
    /// between the SAP ciphertext of the query and the stored SAP ciphertext
    /// of each result (aligned with [`Self::ids`]). These are values the
    /// server can already compute from what it stores — no plaintext
    /// distance is revealed — and they are bit-identical across every
    /// backend answering from the same outsourced database, which the
    /// service layer's loopback parity tests rely on.
    pub sap_dists: Vec<f64>,
    /// Number of candidates the filter phase produced (≤ k′).
    pub filter_candidates: usize,
    /// Cost breakdown for this query.
    pub cost: QueryCost,
}

/// The honest-but-curious cloud server (paper Figure 1). It stores only
/// ciphertexts and answers queries without interaction beyond the single
/// request/response pair.
pub struct CloudServer {
    db: EncryptedDatabase,
}

impl CloudServer {
    /// Takes ownership of an outsourced encrypted database.
    pub fn new(db: EncryptedDatabase) -> Self {
        Self { db }
    }

    /// Read access to the stored database.
    pub fn database(&self) -> &EncryptedDatabase {
        &self.db
    }

    /// Number of live vectors served.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Vector dimensionality served (SAP-ciphertext width).
    pub fn dim(&self) -> usize {
        self.db.hnsw().dim()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// **Algorithm 2**: filter phase (k′-ANNS on HNSW over SAP ciphertexts)
    /// followed by the refine phase (exact DCE comparisons through a secure
    /// max-heap). Single-threaded, as in the paper's evaluation.
    ///
    /// Borrows this thread's pooled [`QueryScratch`]; results are bitwise
    /// identical to [`Self::search_in`] with any scratch.
    pub fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        QueryScratchPool::with(|scratch| self.search_in(scratch, query, params))
    }

    /// [`Self::search`] through caller-owned scratch. With a warm scratch
    /// the whole pipeline performs exactly **two** heap allocations — the
    /// returned `ids` and `sap_dists` vectors, which the outcome must own —
    /// and zero inside the hnsw layer (the counting-allocator regression
    /// test pins both numbers).
    pub fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        let started = Instant::now();
        let hnsw = self.db.hnsw();
        // Cost is read as a counter delta, not reset-then-read: the counter
        // is shared per index, and a reset would erase the work of queries
        // running concurrently under [`crate::SharedServer`]. Per-query
        // numbers are approximate under concurrency, exact sequentially.
        let dist_before = hnsw.distance_computations();

        // Filter: k′ candidates ranked by approximate (SAP) distance.
        let k_prime = params.k_prime.max(query.k);
        let candidates =
            hnsw.search_in(&mut scratch.hnsw, &query.c_sap, k_prime, params.ef_search.max(k_prime));
        let filter_dist_comps = hnsw.distance_computations().saturating_sub(dist_before);
        let filter_candidates = candidates.len();

        // Refine: exact top-k via DCE comparisons only, offered as one
        // batch so the at-capacity screen scores the candidate set with a
        // single `DistanceComp` kernel call per trapdoor load. The heap
        // recycles its storage through the scratch across queries.
        let mut heap = SecureTopK::new_with_storage(
            &query.trapdoor,
            self.db.dce_ciphertexts(),
            query.k,
            std::mem::take(&mut scratch.topk),
        );
        scratch.cand_ids.clear();
        scratch.cand_ids.extend(candidates.iter().map(|c| c.id));
        heap.offer_many(&scratch.cand_ids);
        let refine_sdc_comps = heap.comparisons();
        let (ids, storage) = heap.into_sorted_parts();
        scratch.topk = storage;
        let sap_dists = self.db.sap_distances(&query.c_sap, &ids);

        let cost = QueryCost {
            filter_dist_comps,
            refine_sdc_comps,
            server_time: started.elapsed(),
            bytes_up: query.upload_bytes(),
            bytes_down: 4 * ids.len() as u64, // k result ids, u32 each (paper model)
        };
        SearchOutcome { ids, sap_dists, filter_candidates, cost }
    }

    /// The filter phase alone (`HNSW(filter)` of Figure 6 and the β study of
    /// Figure 4): returns the top-k by *approximate* SAP distance, skipping
    /// refinement entirely.
    pub fn search_filter_only(&self, query: &EncryptedQuery, ef_search: usize) -> SearchOutcome {
        let started = Instant::now();
        let hnsw = self.db.hnsw();
        let dist_before = hnsw.distance_computations();
        let hits = hnsw.search(&query.c_sap, query.k, ef_search.max(query.k));
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        let sap_dists = self.db.sap_distances(&query.c_sap, &ids);
        let cost = QueryCost {
            filter_dist_comps: hnsw.distance_computations().saturating_sub(dist_before),
            refine_sdc_comps: 0,
            server_time: started.elapsed(),
            bytes_up: query.upload_bytes(),
            bytes_down: 4 * ids.len() as u64,
        };
        SearchOutcome { filter_candidates: ids.len(), ids, sap_dists, cost }
    }

    /// Runs only the *filter* search but returns the raw candidate list
    /// (used by the HNSW-AME baseline, which shares our filter phase).
    pub fn filter_candidates(&self, query: &EncryptedQuery, params: &SearchParams) -> Vec<u32> {
        let k_prime = params.k_prime.max(query.k);
        self.db
            .hnsw()
            .search(&query.c_sap, k_prime, params.ef_search.max(k_prime))
            .into_iter()
            .map(|n| n.id)
            .collect()
    }

    /// Server-side insertion of an owner-encrypted vector (Section V-D).
    pub fn insert(&mut self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32 {
        self.db.insert(c_sap, c_dce)
    }

    /// Server-side deletion with graph repair (Section V-D).
    pub fn delete(&mut self, id: u32) {
        self.db.delete(id);
    }

    /// Consumes the server, returning the stored database (for persistence).
    pub fn into_database(self) -> EncryptedDatabase {
        self.db
    }
}

impl crate::backend::QueryBackend for CloudServer {
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        CloudServer::search(self, query, params)
    }

    fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        CloudServer::search_in(self, scratch, query, params)
    }
}

impl crate::backend::BackendInfo for CloudServer {
    fn dim(&self) -> usize {
        CloudServer::dim(self)
    }

    fn kind(&self) -> crate::backend::BackendKind {
        crate::backend::BackendKind::Cloud
    }
}

impl crate::backend::MaintainableServer for CloudServer {
    fn insert(&mut self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32 {
        CloudServer::insert(self, c_sap, c_dce)
    }

    fn delete(&mut self, id: u32) {
        CloudServer::delete(self, id)
    }

    fn is_live(&self, id: u32) -> bool {
        self.db.is_live(id)
    }

    fn live_len(&self) -> usize {
        self.len()
    }

    fn slots(&self) -> usize {
        self.db.hnsw().capacity_slots()
    }
}

impl crate::backend::SnapshotSource for CloudServer {
    fn database_image(&self) -> bytes::Bytes {
        self.db.to_bytes()
    }
}

impl std::fmt::Debug for CloudServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudServer").field("live", &self.len()).finish_non_exhaustive()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::owner::{DataOwner, PpAnnParams};
    use ppann_hnsw::exact_knn_ids;
    use ppann_hnsw::VecStore;
    use ppann_linalg::{seeded_rng, uniform_vec};

    fn setup(
        n: usize,
        dim: usize,
        beta: f64,
        seed: u64,
    ) -> (Vec<Vec<f64>>, DataOwner, CloudServer) {
        let mut rng = seeded_rng(seed);
        let data: Vec<Vec<f64>> = (0..n).map(|_| uniform_vec(&mut rng, dim, -1.0, 1.0)).collect();
        let owner = DataOwner::setup(PpAnnParams::new(dim).with_seed(seed).with_beta(beta), &data);
        let server = CloudServer::new(owner.outsource(&data));
        (data, owner, server)
    }

    #[test]
    fn refine_returns_exact_order_over_candidates() {
        // With β = 0 the filter is exact HNSW; the refine phase must then
        // return the true top-k in the true order.
        let (data, owner, server) = setup(300, 8, 0.0, 151);
        let mut user = owner.authorize_user();
        let store = VecStore::from_vectors(8, &data);
        for qi in 0..10 {
            let q = &data[qi];
            let enc = user.encrypt_query(q, 5);
            let out = server.search(&enc, &SearchParams { k_prime: 40, ef_search: 80 });
            let truth = exact_knn_ids(&store, q, 5);
            assert_eq!(out.ids, truth, "query {qi}");
        }
    }

    #[test]
    fn noisy_filter_with_refine_beats_filter_alone() {
        let (data, owner, server) = setup(800, 12, 1.2, 152);
        let mut user = owner.authorize_user();
        let store = VecStore::from_vectors(12, &data);
        let mut refine_hits = 0usize;
        let mut filter_hits = 0usize;
        let mut total = 0usize;
        for qi in 0..30 {
            let q = &data[qi];
            let truth = exact_knn_ids(&store, q, 10);
            let enc = user.encrypt_query(q, 10);
            let refined = server.search(&enc, &SearchParams { k_prime: 80, ef_search: 160 });
            let filtered = server.search_filter_only(&enc, 160);
            total += truth.len();
            refine_hits += truth.iter().filter(|t| refined.ids.contains(t)).count();
            filter_hits += truth.iter().filter(|t| filtered.ids.contains(t)).count();
        }
        let recall_refined = refine_hits as f64 / total as f64;
        let recall_filtered = filter_hits as f64 / total as f64;
        assert!(
            recall_refined >= recall_filtered,
            "refine {recall_refined} should not lose to filter {recall_filtered}"
        );
        assert!(recall_refined > 0.8, "refined recall {recall_refined} too low");
    }

    #[test]
    fn cost_meter_populated() {
        let (data, owner, server) = setup(200, 6, 0.5, 153);
        let mut user = owner.authorize_user();
        let enc = user.encrypt_query(&data[0], 5);
        let out = server.search(&enc, &SearchParams { k_prime: 20, ef_search: 40 });
        assert!(out.cost.filter_dist_comps > 0);
        assert!(out.cost.refine_sdc_comps > 0);
        assert!(out.cost.bytes_up > 0);
        assert_eq!(out.cost.bytes_down, 4 * out.ids.len() as u64);
    }

    #[test]
    fn maintenance_insert_then_find() {
        let (data, owner, mut server) = setup(100, 4, 0.0, 154);
        let novel = vec![5.0, 5.0, 5.0, 5.0]; // outside the data cube
        let (c_sap, c_dce) = owner.encrypt_for_insert(&novel, 1);
        let id = server.insert(c_sap, c_dce);
        let mut user = owner.authorize_user();
        let enc = user.encrypt_query(&novel, 1);
        let out = server.search(&enc, &SearchParams { k_prime: 10, ef_search: 30 });
        assert_eq!(out.ids, vec![id]);
        let _ = data;
    }

    #[test]
    fn maintenance_delete_removes_from_results() {
        let (data, owner, mut server) = setup(150, 4, 0.0, 155);
        let mut user = owner.authorize_user();
        let enc = user.encrypt_query(&data[3], 1);
        let first = server.search(&enc, &SearchParams { k_prime: 10, ef_search: 30 }).ids[0];
        server.delete(first);
        let enc = user.encrypt_query(&data[3], 5);
        let out = server.search(&enc, &SearchParams { k_prime: 20, ef_search: 40 });
        assert!(!out.ids.contains(&first));
    }

    #[test]
    fn k_larger_than_database() {
        let (data, owner, server) = setup(5, 3, 0.0, 156);
        let mut user = owner.authorize_user();
        let enc = user.encrypt_query(&data[0], 10);
        let out = server.search(&enc, &SearchParams { k_prime: 10, ef_search: 20 });
        assert_eq!(out.ids.len(), 5);
        let _ = data;
    }
}
