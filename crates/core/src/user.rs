//! The query user: the only party besides the owner holding the key.

use crate::cost::UserCost;
use crate::owner::OwnerSecretKey;
use crate::query::EncryptedQuery;
use ppann_linalg::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

/// A query user holding the authorized key bundle (paper Figure 1).
///
/// Per property P3 the user's entire involvement is `encrypt_query` (O(d²)
/// for the DCE trapdoor, O(d) for the SAP ciphertext) and receiving `k` ids.
pub struct QueryUser {
    key: Arc<OwnerSecretKey>,
    rng: StdRng,
    last_cost: UserCost,
}

impl QueryUser {
    pub(crate) fn new(key: Arc<OwnerSecretKey>, seed: u64) -> Self {
        Self { key, rng: seeded_rng(seed), last_cost: UserCost::default() }
    }

    /// Encrypts a query: normalizes, SAP-encrypts (filter phase) and
    /// generates the DCE trapdoor (refine phase).
    pub fn encrypt_query(&mut self, q: &[f64], k: usize) -> EncryptedQuery {
        assert!(k > 0, "k must be positive");
        let started = Instant::now();
        let normalized = self.key.normalize(q);
        let c_sap = self.key.sap.encrypt(&normalized, &mut self.rng);
        let trapdoor = self.key.dce.trapdoor(&normalized, &mut self.rng);
        self.last_cost = UserCost { encrypt_time: started.elapsed() };
        EncryptedQuery { c_sap, trapdoor, k }
    }

    /// Cost of the most recent `encrypt_query` call.
    pub fn last_cost(&self) -> UserCost {
        self.last_cost
    }

    /// Derives an independent user (e.g. to model several query clients).
    pub fn fork(&mut self) -> QueryUser {
        QueryUser::new(Arc::clone(&self.key), self.rng.gen())
    }
}

impl std::fmt::Debug for QueryUser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueryUser { .. }")
    }
}

#[cfg(test)]
mod tests {
    use crate::owner::{DataOwner, PpAnnParams};
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn query_encryption_produces_both_ciphertexts() {
        let mut rng = seeded_rng(141);
        let data: Vec<Vec<f64>> = (0..10).map(|_| uniform_vec(&mut rng, 5, -2.0, 2.0)).collect();
        let owner = DataOwner::setup(PpAnnParams::new(5), &data);
        let mut user = owner.authorize_user();
        let q = user.encrypt_query(&data[0], 3);
        assert_eq!(q.c_sap.len(), 5);
        assert_eq!(q.trapdoor.dim(), 2 * 6 + 16); // d=5 padded to 6
        assert_eq!(q.k, 3);
        assert!(q.upload_bytes() > 0);
    }

    #[test]
    fn fresh_randomness_per_query() {
        let mut rng = seeded_rng(142);
        let data: Vec<Vec<f64>> = (0..5).map(|_| uniform_vec(&mut rng, 4, -1.0, 1.0)).collect();
        let owner = DataOwner::setup(PpAnnParams::new(4), &data);
        let mut user = owner.authorize_user();
        let a = user.encrypt_query(&data[0], 1);
        let b = user.encrypt_query(&data[0], 1);
        assert_ne!(a.c_sap, b.c_sap);
        assert_ne!(a.trapdoor, b.trapdoor);
    }
}
