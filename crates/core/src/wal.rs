//! The per-collection write-ahead log (crash durability).
//!
//! A `--data-dir` deployment stores each collection as a full `.ppdb`
//! snapshot (the `persist` module), rewritten only at creation and at
//! compaction time — so without a log, every insert/delete since the
//! last rewrite would vanish on a crash. This module adds the classic
//! complement (LevelDB's recipe, adapted to our hand-rolled
//! little-endian codec style — DESIGN.md §5): an append-only
//! `<name>.wal` file next to `<name>.ppdb` holding one checksummed,
//! length-prefixed record per acknowledged mutation. Restart loads the
//! snapshot and replays the log over it; compaction rewrites the
//! snapshot and starts a fresh log.
//!
//! ## File layout
//!
//! ```text
//! magic "PPWL" | version=1 u32 | record*
//! record  := len u32 | crc32 u32 | body          (len = body length)
//! body    := tag u8 | payload
//! tag 1 Insert     payload: id u32 | sap_len u64 | sap_len·f64
//!                           | comp_dim u64 | 4·comp_dim f64
//! tag 2 Delete     payload: id u32
//! tag 3 Checkpoint payload: base_len u64 | base_crc u32
//! ```
//!
//! All integers and floats are little endian; `crc32` is the IEEE
//! polynomial (the one zlib/LevelDB use) over `body`. The layout is
//! pinned byte-for-byte by `wal_layout_is_pinned` below, exactly as
//! `v1_layout_is_pinned` pins the snapshot container.
//!
//! ## The sealing checkpoint
//!
//! The first record of every log is a [`WalRecord::Checkpoint`] naming
//! the **identity** `(len, crc32)` of the snapshot file bytes the log
//! extends. This is what makes compaction crash-safe without any
//! multi-file atomic rename: compaction writes the new snapshot
//! (atomically, temp + rename), then a fresh sealed log (atomically,
//! temp + rename). A crash between the two renames leaves the *new*
//! snapshot next to the *old* log — and replay detects the mismatch via
//! the checkpoint, discarding the stale log. That discard loses
//! nothing: compaction runs under the collection's WAL mutex, so every
//! record of the old log is already folded into the new snapshot.
//!
//! ## Torn tails
//!
//! [`replay`] never fails a load over a damaged log: it decodes the
//! longest valid prefix and reports where the damage starts, so the
//! caller truncates the file there and keeps serving. Only the
//! unfsynced suffix can be torn (see [`FsyncPolicy`] for what
//! "acknowledged" buys per policy — OPERATIONS.md §9).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ppann_dce::DceCiphertext;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"PPWL";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// File extension of a collection's log (`<name>.wal` next to
/// `<name>.ppdb`).
pub const WAL_EXT: &str = "wal";

/// Byte length of the file header (magic + version).
pub const WAL_HEADER_LEN: usize = 8;

/// Byte length of a record's frame prefix (`len u32 | crc32 u32`).
pub const WAL_FRAME_LEN: usize = 8;

/// Byte length of a freshly sealed log: header plus the sealing
/// [`WalRecord::Checkpoint`] (whose body is a fixed
/// `tag u8 | base_len u64 | base_crc u32` = 13 bytes). Every mutation
/// record in every log therefore starts at or past this offset — the
/// replication layer uses it as the first shippable WAL offset, so a
/// follower that already holds the sealed snapshot never re-reads the
/// checkpoint over the wire.
pub const WAL_SEALED_LEN: u64 = (WAL_HEADER_LEN + WAL_FRAME_LEN + 13) as u64;

/// Upper bound on one record's body. A single insert is ~`5·dim`
/// doubles, so even 100k-dimensional vectors fit with orders of
/// magnitude to spare; anything larger is a corrupt length field, and
/// bounding it here keeps a flipped bit in `len` from triggering a
/// giant allocation during replay.
pub const MAX_WAL_RECORD: usize = 64 << 20;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;

/// CRC-32 (IEEE 802.3, the zlib polynomial), hand-rolled because the
/// workspace is dependency-free by policy (DESIGN.md §3): reflected
/// table-driven implementation, byte at a time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut state = !0u32;
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    !state
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The identity of a snapshot file's exact bytes: length plus CRC-32.
/// A log's sealing [`WalRecord::Checkpoint`] carries the identity of
/// the snapshot it extends, so replay can tell a current log from a
/// stale one left behind by a crashed compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotId {
    /// Snapshot file length in bytes.
    pub len: u64,
    /// CRC-32 of the snapshot file bytes.
    pub crc: u32,
}

/// Computes the [`SnapshotId`] of a snapshot image.
pub fn snapshot_id(bytes: &[u8]) -> SnapshotId {
    SnapshotId { len: bytes.len() as u64, crc: crc32(bytes) }
}

/// When an acknowledged mutation is guaranteed to be on disk
/// (OPERATIONS.md §9 discusses the trade-offs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged mutation survives
    /// SIGKILL *and* power loss. The default.
    Always,
    /// `fsync` once per `n` records: bounded data loss (at most the
    /// last `n-1` acknowledged mutations) at a fraction of the fsync
    /// cost.
    EveryN(u32),
    /// Never `fsync` from the hot path: the OS flushes when it
    /// pleases. Survives a process SIGKILL (the records are in the
    /// page cache) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI/user spelling: `always`, `never`, or `every=N`
    /// with `N ≥ 1`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match s.strip_prefix("every=").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!("bad fsync policy `{s}` (want always, never, or every=N)")),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Never => f.write_str("never"),
        }
    }
}

/// Durability knobs a `--data-dir` deployment attaches to every
/// collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// When appended records reach disk (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Once the log exceeds this many bytes, the next mutation
    /// compacts: the snapshot is rewritten and a fresh sealed log
    /// started. Bounds both disk usage and replay-on-restart cost.
    pub compact_bytes: u64,
}

/// Default [`DurabilityOptions::compact_bytes`]: a few thousand typical
/// records — large enough that compaction (a full snapshot rewrite) is
/// rare, small enough that replay stays far cheaper than a cold index
/// rebuild.
pub const DEFAULT_COMPACT_BYTES: u64 = 4 << 20;

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self { fsync: FsyncPolicy::Always, compact_bytes: DEFAULT_COMPACT_BYTES }
    }
}

/// One logged mutation (or the sealing checkpoint).
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An acknowledged insert: the id the backend assigned plus the
    /// full pre-encrypted row (SAP ciphertext for the index, DCE
    /// ciphertext for refinement).
    Insert {
        /// Assigned global id (must equal the next free slot at replay
        /// time — a mismatch marks the log corrupt from that record on).
        id: u32,
        /// SAP ciphertext (the indexed vector).
        c_sap: Vec<f64>,
        /// DCE ciphertext (the exact-comparison row).
        c_dce: DceCiphertext,
    },
    /// An acknowledged delete of a live id.
    Delete {
        /// The tombstoned global id.
        id: u32,
    },
    /// The log's first record: the identity of the snapshot these
    /// records extend.
    Checkpoint {
        /// Identity of the snapshot file bytes.
        base: SnapshotId,
    },
}

impl WalRecord {
    /// Encodes the record as one framed WAL entry
    /// (`len | crc | tag | payload`).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        match self {
            WalRecord::Insert { id, c_sap, c_dce } => {
                body.put_u8(TAG_INSERT);
                put_insert_payload(&mut body, *id, c_sap, c_dce);
            }
            WalRecord::Delete { id } => {
                body.put_u8(TAG_DELETE);
                body.put_u32_le(*id);
            }
            WalRecord::Checkpoint { base } => {
                body.put_u8(TAG_CHECKPOINT);
                body.put_u64_le(base.len);
                body.put_u32_le(base.crc);
            }
        }
        frame(&body)
    }
}

fn put_insert_payload(body: &mut BytesMut, id: u32, c_sap: &[f64], c_dce: &DceCiphertext) {
    body.put_u32_le(id);
    crate::wire::put_f64_slice(body, c_sap);
    let comps = c_dce.components();
    body.put_u64_le(c_dce.component_dim() as u64);
    for comp in comps {
        for v in comp {
            body.put_f64_le(*v);
        }
    }
}

/// Wraps a record body in the `len | crc32 | body` frame.
fn frame(body: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(WAL_FRAME_LEN + body.len());
    buf.put_u32_le(body.len() as u32);
    buf.put_u32_le(crc32(body));
    buf.put_slice(body);
    buf.freeze()
}

/// The WAL file header (`magic | version`).
pub fn wal_header() -> Bytes {
    let mut buf = BytesMut::with_capacity(WAL_HEADER_LEN);
    buf.put_slice(WAL_MAGIC);
    buf.put_u32_le(WAL_VERSION);
    buf.freeze()
}

/// Decodes one record body (everything after the frame prefix, CRC
/// already verified). `None` means the body is malformed — an unknown
/// tag, a truncated payload, or trailing garbage.
fn decode_body(body: &[u8]) -> Option<WalRecord> {
    let mut data = Bytes::copy_from_slice(body);
    if data.remaining() < 1 {
        return None;
    }
    let tag = data.get_u8();
    let record = match tag {
        TAG_INSERT => {
            if data.remaining() < 4 {
                return None;
            }
            let id = data.get_u32_le();
            let c_sap = crate::wire::get_f64_slice(&mut data).ok()?;
            if data.remaining() < 8 {
                return None;
            }
            let comp_dim = data.get_u64_le() as usize;
            if data.remaining() < comp_dim.checked_mul(4 * 8)? {
                return None;
            }
            let mut comps: [Vec<f64>; 4] = Default::default();
            for comp in &mut comps {
                comp.reserve(comp_dim);
                for _ in 0..comp_dim {
                    comp.push(data.get_f64_le());
                }
            }
            let [a, b, c, d] = comps;
            WalRecord::Insert { id, c_sap, c_dce: DceCiphertext::from_components(a, b, c, d) }
        }
        TAG_DELETE => {
            if data.remaining() < 4 {
                return None;
            }
            WalRecord::Delete { id: data.get_u32_le() }
        }
        TAG_CHECKPOINT => {
            if data.remaining() < 12 {
                return None;
            }
            let len = data.get_u64_le();
            let crc = data.get_u32_le();
            WalRecord::Checkpoint { base: SnapshotId { len, crc } }
        }
        _ => return None,
    };
    if data.has_remaining() {
        return None; // trailing garbage inside a checksummed frame
    }
    Some(record)
}

/// What [`replay`] recovered from a log image.
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded mutation records after the sealing checkpoint, each
    /// paired with the file offset one past its last byte — so a caller
    /// that fails to *apply* record `i` can truncate the file at record
    /// `i-1`'s end offset.
    pub records: Vec<(WalRecord, u64)>,
    /// Length of the longest cleanly-decoding file prefix (header,
    /// checkpoint and records). Zero when the header or the sealing
    /// checkpoint itself is unusable — the caller should then discard
    /// the whole file.
    pub valid_len: u64,
    /// End offset of the sealing checkpoint: the truncation target when
    /// *no* record applies cleanly.
    pub sealed_len: u64,
    /// True when a torn or corrupt tail was dropped (the file is longer
    /// than `valid_len`).
    pub truncated: bool,
    /// True when the log's checkpoint names a *different* snapshot than
    /// the one on disk: a stale log from a crashed compaction window.
    /// Discarding it is lossless (see the module docs).
    pub stale: bool,
}

/// Decodes the longest valid prefix of a WAL image against the snapshot
/// identity `base`. Never fails and never panics: damage is reported
/// via `truncated`/`stale` and the shortened `valid_len`, not an error
/// — a half-written log must degrade to "fewer replayed records", not
/// to an unloadable collection.
pub fn replay(bytes: &[u8], base: SnapshotId) -> WalReplay {
    let empty = |stale: bool, truncated: bool| WalReplay {
        records: Vec::new(),
        valid_len: 0,
        sealed_len: 0,
        truncated,
        stale,
    };
    if bytes.len() < WAL_HEADER_LEN
        || &bytes[..4] != WAL_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != WAL_VERSION
    {
        return empty(false, !bytes.is_empty());
    }

    // The sealing checkpoint must decode and must name `base`; anything
    // else invalidates the whole file (records without a checkpoint
    // have no defined base state to replay over).
    let mut off = WAL_HEADER_LEN;
    let (first, first_end) = match decode_record_at(bytes, off) {
        Some(ok) => ok,
        None => return empty(false, true),
    };
    match first {
        WalRecord::Checkpoint { base: sealed } if sealed == base => {}
        WalRecord::Checkpoint { .. } => return empty(true, false),
        _ => return empty(false, true),
    }
    off = first_end;
    let sealed_len = off as u64;

    let mut records = Vec::new();
    let mut truncated = false;
    while off < bytes.len() {
        match decode_record_at(bytes, off) {
            // A second checkpoint mid-log is as corrupt as a bad CRC:
            // checkpoints only ever open a file.
            Some((WalRecord::Checkpoint { .. }, _)) | None => {
                truncated = true;
                break;
            }
            Some((record, end)) => {
                records.push((record, end as u64));
                off = end;
            }
        }
    }
    WalReplay { records, valid_len: off as u64, sealed_len, truncated, stale: false }
}

/// Decodes the framed record starting at `off`; `None` on a torn or
/// corrupt frame. On success returns the record and the offset one past
/// it. Public so a replication follower can walk a shipped
/// [`segment_end`]-aligned byte run record by record, applying each and
/// advancing its acknowledged offset only past records that applied.
pub fn decode_record_at(bytes: &[u8], off: usize) -> Option<(WalRecord, usize)> {
    let frame = bytes.get(off..off + WAL_FRAME_LEN)?;
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    if len > MAX_WAL_RECORD {
        return None;
    }
    let body = bytes.get(off + WAL_FRAME_LEN..off + WAL_FRAME_LEN + len)?;
    if crc32(body) != crc {
        return None;
    }
    Some((decode_body(body)?, off + WAL_FRAME_LEN + len))
}

/// Walks whole record frames from `start`, returning the largest
/// record-aligned end offset such that `end - start <= max_bytes` —
/// except that the first record is always included even when it alone
/// exceeds `max_bytes`, so a single oversized insert can never stall a
/// replication stream. Walking stops early at a frame that does not fit
/// in `bytes` or whose length field is absurd; the returned offset is
/// then simply the aligned end of the last whole frame. Only the length
/// prefixes are examined (no CRC or body decode): the caller ships raw
/// bytes, and the *receiver* re-verifies each record as it applies.
pub fn segment_end(bytes: &[u8], start: usize, max_bytes: usize) -> usize {
    let mut off = start;
    while let Some(frame) = bytes.get(off..off + WAL_FRAME_LEN) {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        if len > MAX_WAL_RECORD {
            break;
        }
        let Some(end) = off.checked_add(WAL_FRAME_LEN + len).filter(|&end| end <= bytes.len())
        else {
            break;
        };
        if off > start && end - start > max_bytes {
            break;
        }
        off = end;
    }
    off
}

/// `fsync` on a directory, making a just-renamed file durable. Errors
/// are surfaced: a deployment whose filesystem refuses directory fsync
/// should hear about it once at startup rather than find out after a
/// power cut.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Truncates the file at `path` to `len` bytes and fsyncs — how a torn
/// tail reported by [`replay`] is actually removed.
pub fn truncate_to(path: &Path, len: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()
}

/// An open, append-only WAL file plus its fsync bookkeeping.
///
/// Writers are created in exactly two ways — [`WalWriter::create_sealed`]
/// (fresh log, written atomically with its header and checkpoint) and
/// [`WalWriter::open_append`] (continue a replayed log) — and serialized
/// externally by the collection's WAL mutex.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    /// The snapshot identity this log's sealing checkpoint names.
    /// Remembered so the replication layer can hand `(base, log_len)` to
    /// a follower without re-reading the file's first record on every
    /// pull.
    base: SnapshotId,
    /// Length of the last known-good log prefix: every byte below it was
    /// written by a fully successful append (and is covered by the ack
    /// the caller issued). Bytes past it, if any, are the leftovers of a
    /// failed append — see `dirty`.
    len: u64,
    policy: FsyncPolicy,
    /// Records appended since the last fsync (drives [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    /// A previous append failed partway: the file may hold bytes past
    /// `len` — a torn frame from a partial `write_all`, or a complete
    /// record whose fsync failed and which was therefore never
    /// acknowledged or applied. Appending over it would bury a poisoned
    /// frame under acknowledged records (replay truncates at the first
    /// bad or non-applying frame, discarding everything behind it), so
    /// the file must be rolled back to `len` before anything new lands.
    dirty: bool,
}

impl WalWriter {
    /// Creates a fresh log sealed to snapshot identity `base`,
    /// atomically: header + checkpoint are written to `<path>.tmp`,
    /// fsynced, renamed over `path`, and the directory fsynced — so the
    /// log either exists complete or not at all.
    pub fn create_sealed(
        path: &Path,
        base: SnapshotId,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        let tmp = tmp_sibling(path);
        let mut image = BytesMut::new();
        image.put_slice(&wal_header());
        image.put_slice(&WalRecord::Checkpoint { base }.encode());
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self { file, base, len: image.len() as u64, policy, unsynced: 0, dirty: false })
    }

    /// Opens an existing (already replayed and repaired) log for
    /// appending. The sealing checkpoint is re-read to recover the
    /// snapshot identity this log extends; a file whose first record is
    /// not a valid checkpoint is refused (the caller replayed it before
    /// opening, so this only fires on logic errors or post-replay
    /// corruption).
    pub fn open_append(path: &Path, policy: FsyncPolicy) -> std::io::Result<Self> {
        let head = {
            let mut buf = vec![0u8; WAL_SEALED_LEN as usize];
            let mut f = File::open(path)?;
            let mut take = 0;
            while take < buf.len() {
                match f.read(&mut buf[take..])? {
                    0 => break,
                    n => take += n,
                }
            }
            buf.truncate(take);
            buf
        };
        let base = match decode_record_at(&head, WAL_HEADER_LEN) {
            Some((WalRecord::Checkpoint { base }, _)) => base,
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "WAL has no valid sealing checkpoint",
                ))
            }
        };
        let file = OpenOptions::new().append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self { file, base, len, policy, unsynced: 0, dirty: false })
    }

    /// The snapshot identity named by this log's sealing checkpoint.
    pub fn base(&self) -> SnapshotId {
        self.base
    }

    /// Current log length in bytes (what compaction thresholds compare
    /// against).
    pub fn log_len(&self) -> u64 {
        self.len
    }

    /// Appends one record, fsyncing per policy. On `Ok`, the record is
    /// as durable as the policy promises — the caller may acknowledge.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.append_bytes(&record.encode())
    }

    /// [`Self::append`] of an [`WalRecord::Insert`], encoding straight
    /// from borrowed ciphertexts (the hot path avoids cloning a
    /// `5·dim`-double row just to log it).
    pub fn append_insert(
        &mut self,
        id: u32,
        c_sap: &[f64],
        c_dce: &DceCiphertext,
    ) -> std::io::Result<()> {
        let mut body = BytesMut::new();
        body.put_u8(TAG_INSERT);
        put_insert_payload(&mut body, id, c_sap, c_dce);
        self.append_bytes(&frame(&body))
    }

    /// [`Self::append`] of a [`WalRecord::Delete`].
    pub fn append_delete(&mut self, id: u32) -> std::io::Result<()> {
        self.append_bytes(&WalRecord::Delete { id }.encode())
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.dirty {
            self.repair()?;
        }
        // Pessimistically dirty until both the write and any
        // policy-required fsync succeed: a failure at either step means
        // the file tail no longer matches the acknowledged history and
        // must be repaired before the next record.
        self.dirty = true;
        self.file.write_all(bytes)?;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        self.len += bytes.len() as u64;
        self.dirty = false;
        Ok(())
    }

    /// Rolls the file back to the last known-good length after a failed
    /// append: truncates the torn / never-acknowledged suffix away and
    /// fsyncs, so the next record lands exactly where replay expects it.
    /// (A failed `sync_data` may have dropped dirty pages — truncating
    /// rather than re-syncing means nothing depends on those bytes.)
    fn repair(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.len)?;
        self.file.sync_all()?;
        self.unsynced = 0;
        self.dirty = false;
        Ok(())
    }

    /// Forces everything appended so far to disk regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Plants the aftermath of a failed append — garbage bytes past the
    /// known-good length with the writer marked dirty — without needing
    /// a fault-injecting filesystem. Tests only.
    #[cfg(test)]
    pub(crate) fn simulate_failed_append(&mut self, garbage: &[u8]) {
        self.file.write_all(garbage).unwrap();
        self.file.sync_data().unwrap();
        self.dirty = true;
    }
}

/// `<file>.tmp` next to `path` — same directory, so the final rename
/// never crosses a filesystem boundary. The `tmp` extension keeps
/// `Catalog::load_dir` (which filters on `.ppdb`) and the WAL lookup
/// (exact `<name>.wal`) blind to leftovers from a crashed write.
pub(crate) fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The WAL path of a collection snapshot path (`x/docs.ppdb` →
/// `x/docs.wal`).
pub fn wal_path_for(snapshot_path: &Path) -> std::path::PathBuf {
    snapshot_path.with_extension(WAL_EXT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dce(vals: [f64; 4]) -> DceCiphertext {
        DceCiphertext::from_components(vec![vals[0]], vec![vals[1]], vec![vals[2]], vec![vals[3]])
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ppanns_wal_{tag}_{}.wal", std::process::id()))
    }

    /// The standard CRC-32 check value: any deviation in polynomial,
    /// reflection, or init/final XOR breaks this long before it can
    /// corrupt a log undetected.
    #[test]
    fn crc32_matches_the_ieee_reference() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// Byte-for-byte pin of the WAL layout (the log twin of
    /// `v1_layout_is_pinned`): header, framing, every payload field of
    /// all three record types, built here independently of the
    /// production encoder. DESIGN.md §5 documents this layout.
    #[test]
    fn wal_layout_is_pinned() {
        let base = SnapshotId { len: 0x1122, crc: 0xAABBCCDD };
        let insert =
            WalRecord::Insert { id: 7, c_sap: vec![1.5, -2.0], c_dce: dce([0.25, 0.5, 1.0, 2.0]) };
        let delete = WalRecord::Delete { id: 3 };
        let checkpoint = WalRecord::Checkpoint { base };

        let mut image = BytesMut::new();
        image.put_slice(&wal_header());
        image.put_slice(&checkpoint.encode());
        image.put_slice(&insert.encode());
        image.put_slice(&delete.encode());

        let mut expect = BytesMut::new();
        expect.put_slice(b"PPWL"); // magic
        expect.put_u32_le(1); // wal format version

        // Checkpoint: tag 3 | base_len u64 | base_crc u32.
        let mut body = BytesMut::new();
        body.put_u8(3);
        body.put_u64_le(0x1122);
        body.put_u32_le(0xAABBCCDD);
        expect.put_u32_le(body.len() as u32); // frame: body length...
        expect.put_u32_le(crc32(&body)); // ...and body checksum
        expect.put_slice(&body);

        // Insert: tag 1 | id u32 | sap_len u64 | sap f64s
        //         | comp_dim u64 | 4·comp_dim f64s.
        let mut body = BytesMut::new();
        body.put_u8(1);
        body.put_u32_le(7);
        body.put_u64_le(2); // sap length
        body.put_f64_le(1.5);
        body.put_f64_le(-2.0);
        body.put_u64_le(1); // dce component_dim
        body.put_f64_le(0.25);
        body.put_f64_le(0.5);
        body.put_f64_le(1.0);
        body.put_f64_le(2.0);
        expect.put_u32_le(body.len() as u32);
        expect.put_u32_le(crc32(&body));
        expect.put_slice(&body);

        // Delete: tag 2 | id u32.
        let mut body = BytesMut::new();
        body.put_u8(2);
        body.put_u32_le(3);
        expect.put_u32_le(body.len() as u32);
        expect.put_u32_le(crc32(&body));
        expect.put_slice(&body);

        assert_eq!(image.as_ref(), expect.as_ref(), "WAL byte layout drifted");

        // And the pinned image replays to exactly the two mutations.
        let out = replay(&image, base);
        assert!(!out.truncated && !out.stale);
        assert_eq!(out.valid_len, image.len() as u64);
        assert_eq!(
            out.records.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>(),
            vec![insert, delete]
        );
    }

    #[test]
    fn fsync_policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=128"), Ok(FsyncPolicy::EveryN(128)));
        for bad in ["", "Always", "every=0", "every=", "every=x", "fsync"] {
            assert!(FsyncPolicy::parse(bad).is_err(), "{bad:?} must not parse");
        }
        for p in [FsyncPolicy::Always, FsyncPolicy::Never, FsyncPolicy::EveryN(7)] {
            assert_eq!(FsyncPolicy::parse(&p.to_string()), Ok(p), "display/parse roundtrip");
        }
    }

    #[test]
    fn writer_roundtrips_through_replay() {
        let path = temp_path("roundtrip");
        let base = snapshot_id(b"some snapshot image");
        let mut w = WalWriter::create_sealed(&path, base, FsyncPolicy::Always).unwrap();
        w.append_insert(0, &[1.0, 2.0], &dce([1.0, 2.0, 3.0, 4.0])).unwrap();
        w.append_delete(0).unwrap();
        w.append(&WalRecord::Insert { id: 1, c_sap: vec![5.0], c_dce: dce([9.0, 8.0, 7.0, 6.0]) })
            .unwrap();
        assert_eq!(w.log_len(), std::fs::metadata(&path).unwrap().len());
        drop(w);

        let bytes = std::fs::read(&path).unwrap();
        let out = replay(&bytes, base);
        assert!(!out.truncated && !out.stale);
        assert_eq!(out.records.len(), 3);
        assert_eq!(
            out.records[0].0,
            WalRecord::Insert { id: 0, c_sap: vec![1.0, 2.0], c_dce: dce([1.0, 2.0, 3.0, 4.0]) }
        );
        assert_eq!(out.records[1].0, WalRecord::Delete { id: 0 });

        // Reopen for append and extend; replay sees all four.
        let mut w = WalWriter::open_append(&path, FsyncPolicy::Never).unwrap();
        w.append_delete(1).unwrap();
        w.sync().unwrap();
        drop(w);
        let out = replay(&std::fs::read(&path).unwrap(), base);
        assert_eq!(out.records.len(), 4);
        assert_eq!(out.records[3].0, WalRecord::Delete { id: 1 });
        std::fs::remove_file(&path).ok();
    }

    /// After a failed append (torn bytes on disk, no ack), the writer
    /// repairs the file before the next record: the poisoned suffix is
    /// truncated away, so later acknowledged records replay cleanly
    /// instead of being discarded behind a bad frame.
    #[test]
    fn failed_append_is_repaired_before_the_next_record() {
        let path = temp_path("repair");
        let base = snapshot_id(b"snap");
        let mut w = WalWriter::create_sealed(&path, base, FsyncPolicy::Always).unwrap();
        w.append_insert(0, &[1.0], &dce([1.0, 2.0, 3.0, 4.0])).unwrap();
        let good_len = w.log_len();
        // A torn frame: plausible length prefix, then garbage that never
        // got finished. Also covers the full-frame-but-fsync-failed case
        // — either way the suffix was never acknowledged.
        w.simulate_failed_append(&[0xFF; 13]);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len + 13);
        // The next append first rolls the file back to `good_len`, then
        // lands cleanly right after the last acknowledged record.
        w.append_delete(0).unwrap();
        assert_eq!(w.log_len(), std::fs::metadata(&path).unwrap().len());
        drop(w);
        let out = replay(&std::fs::read(&path).unwrap(), base);
        assert!(!out.truncated && !out.stale, "repair left damage behind");
        assert_eq!(
            out.records.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>(),
            vec![
                WalRecord::Insert { id: 0, c_sap: vec![1.0], c_dce: dce([1.0, 2.0, 3.0, 4.0]) },
                WalRecord::Delete { id: 0 },
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_checkpoint_is_reported_not_replayed() {
        let path = temp_path("stale");
        let old_base = snapshot_id(b"old snapshot");
        let mut w = WalWriter::create_sealed(&path, old_base, FsyncPolicy::Always).unwrap();
        w.append_delete(0).unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        // Same file, replayed against the *new* snapshot's identity: a
        // crashed compaction left this log behind — it must be ignored
        // wholesale, not half-applied.
        let out = replay(&bytes, snapshot_id(b"new snapshot"));
        assert!(out.stale);
        assert!(out.records.is_empty());
        assert_eq!(out.valid_len, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_longest_prefix() {
        let base = snapshot_id(b"snap");
        let mut image = BytesMut::new();
        image.put_slice(&wal_header());
        image.put_slice(&WalRecord::Checkpoint { base }.encode());
        let mut ends = Vec::new();
        for id in 0..5u32 {
            image.put_slice(
                &WalRecord::Insert { id, c_sap: vec![id as f64], c_dce: dce([1.0, 2.0, 3.0, 4.0]) }
                    .encode(),
            );
            ends.push(image.len());
        }
        let full = image.freeze();

        // Truncation at every possible byte position: replay recovers
        // exactly the records whose frames fit in the prefix.
        for cut in 0..full.len() {
            let out = replay(&full[..cut], base);
            let want = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(out.records.len(), want, "cut at {cut}");
            assert!(out.valid_len <= cut as u64);
        }
        // And the intact image replays in full.
        let out = replay(&full, base);
        assert_eq!(out.records.len(), 5);
        assert!(!out.truncated);
    }

    #[test]
    fn absurd_length_field_cannot_trigger_giant_allocation() {
        let base = snapshot_id(b"snap");
        let mut image = BytesMut::new();
        image.put_slice(&wal_header());
        image.put_slice(&WalRecord::Checkpoint { base }.encode());
        // A frame whose length field claims 4 GiB.
        image.put_u32_le(u32::MAX);
        image.put_u32_le(0);
        let out = replay(&image, base);
        assert!(out.truncated);
        assert!(out.records.is_empty());
    }

    /// The sealed-length constant is the literal length of a freshly
    /// sealed log — the replication layer depends on it as the first
    /// shippable offset.
    #[test]
    fn sealed_len_matches_a_fresh_log() {
        let path = temp_path("sealed_len");
        let base = snapshot_id(b"snap");
        let w = WalWriter::create_sealed(&path, base, FsyncPolicy::Never).unwrap();
        assert_eq!(w.log_len(), WAL_SEALED_LEN);
        assert_eq!(w.base(), base);
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), WAL_SEALED_LEN);
        // Reopening recovers the same seal from the file's first record.
        let w = WalWriter::open_append(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(w.base(), base);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_refuses_a_sealless_file() {
        let path = temp_path("sealless");
        std::fs::write(&path, wal_header()).unwrap();
        assert!(WalWriter::open_append(&path, FsyncPolicy::Never).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// `segment_end` slices record-aligned runs: never mid-frame, first
    /// record always included, cap honored after that.
    #[test]
    fn segment_end_is_record_aligned() {
        let base = snapshot_id(b"snap");
        let mut image = BytesMut::new();
        image.put_slice(&wal_header());
        image.put_slice(&WalRecord::Checkpoint { base }.encode());
        let start = image.len();
        let mut ends = Vec::new();
        for id in 0..4u32 {
            image.put_slice(
                &WalRecord::Insert { id, c_sap: vec![id as f64], c_dce: dce([1.0, 2.0, 3.0, 4.0]) }
                    .encode(),
            );
            ends.push(image.len());
        }
        let record_len = ends[0] - start;

        // A huge cap takes everything; a zero cap still takes the first
        // record; a cap of exactly two records takes two.
        assert_eq!(segment_end(&image, start, usize::MAX), image.len());
        assert_eq!(segment_end(&image, start, 0), ends[0]);
        assert_eq!(segment_end(&image, start, 2 * record_len), ends[1]);
        // From the second record with room for one more: aligned at its
        // end, not mid-frame.
        assert_eq!(segment_end(&image, ends[0], record_len), ends[1]);
        // At the end of the image there is nothing to take.
        assert_eq!(segment_end(&image, image.len(), usize::MAX), image.len());
        // A torn tail stops the walk at the last whole frame.
        let cut = ends[2] + 5;
        assert_eq!(segment_end(&image[..cut], start, usize::MAX), ends[2]);
        // An absurd length field stops the walk too.
        let mut poisoned = image[..ends[1]].to_vec();
        poisoned.extend_from_slice(&u32::MAX.to_le_bytes());
        poisoned.extend_from_slice(&[0; 4]);
        assert_eq!(segment_end(&poisoned, start, usize::MAX), ends[1]);
    }

    /// Segments sliced by `segment_end` decode record-by-record with
    /// `decode_record_at` — the follower's apply loop in miniature.
    #[test]
    fn shipped_segments_decode_record_by_record() {
        let base = snapshot_id(b"snap");
        let mut image = BytesMut::new();
        image.put_slice(&wal_header());
        image.put_slice(&WalRecord::Checkpoint { base }.encode());
        let start = image.len();
        let mut want = Vec::new();
        for id in 0..3u32 {
            let r = WalRecord::Insert { id, c_sap: vec![0.5], c_dce: dce([1.0, 2.0, 3.0, 4.0]) };
            image.put_slice(&r.encode());
            want.push(r);
        }
        let end = segment_end(&image, start, usize::MAX);
        let segment = &image[start..end];
        let mut off = 0;
        let mut got = Vec::new();
        while off < segment.len() {
            let (record, next) = decode_record_at(segment, off).expect("aligned segment");
            got.push(record);
            off = next;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn mid_log_checkpoint_is_corrupt() {
        let base = snapshot_id(b"snap");
        let mut image = BytesMut::new();
        image.put_slice(&wal_header());
        image.put_slice(&WalRecord::Checkpoint { base }.encode());
        image.put_slice(&WalRecord::Delete { id: 0 }.encode());
        let keep = image.len() as u64;
        image.put_slice(&WalRecord::Checkpoint { base }.encode());
        image.put_slice(&WalRecord::Delete { id: 1 }.encode());
        let out = replay(&image, base);
        assert!(out.truncated);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.valid_len, keep);
    }
}
