//! Cost accounting for the Figure 9 style server/user/communication
//! breakdowns.

use std::time::Duration;

/// Costs incurred by the server while answering one query.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCost {
    /// Plain (SAP-space) distance computations in the filter phase.
    pub filter_dist_comps: u64,
    /// DCE secure comparisons in the refine phase.
    pub refine_sdc_comps: u64,
    /// Wall-clock server time.
    pub server_time: Duration,
    /// Bytes uploaded by the user (SAP query + trapdoor + k).
    pub bytes_up: u64,
    /// Bytes downloaded by the user (k result ids).
    pub bytes_down: u64,
}

impl QueryCost {
    /// Total communication volume.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Accumulates another query's costs (for averaging over a workload).
    pub fn absorb(&mut self, other: &QueryCost) {
        self.filter_dist_comps += other.filter_dist_comps;
        self.refine_sdc_comps += other.refine_sdc_comps;
        self.server_time += other.server_time;
        self.bytes_up += other.bytes_up;
        self.bytes_down += other.bytes_down;
    }
}

/// Costs incurred by the user per query (trapdoor generation is the only
/// user-side work in this scheme — property P3 of the paper).
#[derive(Clone, Copy, Debug, Default)]
pub struct UserCost {
    /// Wall-clock time to produce `(C_q, T_q)`.
    pub encrypt_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = QueryCost {
            filter_dist_comps: 1,
            refine_sdc_comps: 2,
            server_time: Duration::from_nanos(5),
            bytes_up: 10,
            bytes_down: 20,
        };
        a.absorb(&a.clone());
        assert_eq!(a.filter_dist_comps, 2);
        assert_eq!(a.refine_sdc_comps, 4);
        assert_eq!(a.total_bytes(), 60);
    }
}
