//! # ppann-core
//!
//! The complete **PP-ANNS scheme** of the reproduced paper (Section V):
//! a single-server, non-interactive privacy-preserving k-ANN search.
//!
//! ## Roles (paper Figure 1)
//!
//! * [`DataOwner`] — holds the plaintext database; generates the secret key
//!   bundle, encrypts every vector under **both** DCPE/SAP (approximate, for
//!   the index) and DCE (exact comparisons, for refinement), builds the HNSW
//!   graph over the SAP ciphertexts, and outsources everything to the cloud.
//! * [`QueryUser`] — holds the authorized secret key; per query computes one
//!   SAP ciphertext and one DCE trapdoor (O(d²) work) and sends `(C_q, T_q, k)`.
//! * [`CloudServer`] — stores only ciphertexts; answers queries with the
//!   **filter-and-refine** search of Algorithm 2: a k′-ANN search on the
//!   HNSW-over-SAP index (cheap, approximate) followed by an exact top-k
//!   refinement that orders candidates *only* through DCE's `DistanceComp`.
//!
//! ## Beyond the paper: scale-out server shapes
//!
//! The ROADMAP's production goals add three compositions over the same
//! query message, abstracted by [`QueryBackend`] / [`MaintainableServer`]:
//! [`ShardedServer`] (per-query multi-core fan-out with a single exact
//! merge-refine), [`SharedServer`] (concurrent queries + exclusive
//! maintenance over any backend), and [`BatchExecutor`] (work-stealing
//! batch throughput over any backend). On top of them the [`Catalog`]
//! hosts many *named collections* in one process — each a type-erased
//! [`ErasedBackend`], so differently-shaped and differently-sized indexes
//! coexist — which is what the network service namespaces its requests
//! over.
//!
//! ## What the server learns
//!
//! Per the paper's threat model, the server sees SAP ciphertexts, DCE
//! ciphertexts, the (approximate) HNSW neighborhood structure, and the signs
//! of distance comparisons during refinement — nothing else. No plaintext
//! vector, query, or distance value is ever materialized server-side.
//!
//! ```
//! use ppann_core::{CloudServer, DataOwner, PpAnnParams, SearchParams};
//! use ppann_linalg::{seeded_rng, uniform_vec};
//!
//! let mut rng = seeded_rng(7);
//! let data: Vec<Vec<f64>> = (0..200).map(|_| uniform_vec(&mut rng, 8, -1.0, 1.0)).collect();
//! let params = PpAnnParams::new(8).with_seed(42);
//! let owner = DataOwner::setup(params, &data);
//! let server = CloudServer::new(owner.outsource(&data));
//! let mut user = owner.authorize_user();
//!
//! let query = user.encrypt_query(&data[0], 5);
//! let outcome = server.search(&query, &SearchParams { k_prime: 20, ef_search: 40 });
//! assert_eq!(outcome.ids.len(), 5);
//! assert_eq!(outcome.ids[0], 0); // the query point itself is its own 1-NN
//! ```

mod backend;
pub mod batch;
pub mod catalog;
mod concurrent;
mod cost;
mod heap;
mod index;
mod keyfile;
mod owner;
mod persist;
mod query;
mod scratch;
mod server;
mod shard;
pub mod tune;
mod user;
pub mod wal;
pub mod wire;

pub use backend::{
    BackendInfo, BackendKind, ErasedBackend, MaintainableServer, QueryBackend, SnapshotSource,
};
pub use batch::{BatchExecutor, BatchOutcome};
pub use catalog::{
    validate_collection_name, Catalog, CatalogError, Collection, CollectionInfo,
    DurableCatalogError, ReplicaApplyError, ReplicationSource, WalRecoveryReport, WalStatus,
    DEFAULT_COLLECTION, MAX_COLLECTION_NAME_LEN,
};
pub use concurrent::SharedServer;
pub use cost::{QueryCost, UserCost};
pub use heap::SecureTopK;
pub use index::EncryptedDatabase;
pub use owner::{DataOwner, OwnerSecretKey, PpAnnParams};
pub use persist::{
    atomic_write, collection_container_bytes, collection_snapshot_bytes, load_snapshot,
    load_snapshot_bytes, save_collection_snapshot, CollectionMeta, PersistError, SNAPSHOT_EXT,
};
pub use query::EncryptedQuery;
pub use scratch::{QueryScratch, QueryScratchPool};
pub use server::{CloudServer, SearchOutcome, SearchParams};
pub use shard::ShardedServer;
pub use user::QueryUser;
pub use wal::{DurabilityOptions, FsyncPolicy, DEFAULT_COMPACT_BYTES};
pub use wire::WireError;
