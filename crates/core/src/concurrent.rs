//! A thread-safe server facade: concurrent queries, exclusive maintenance.
//!
//! The paper evaluates single-threaded search, but a deployable service must
//! answer queries while the owner occasionally inserts or deletes vectors.
//! `SharedServer` wraps any server in a `parking_lot::RwLock`: searches take
//! the shared lock, maintenance takes the exclusive one. It is generic over
//! the backend, defaulting to the paper's [`CloudServer`]; wrap a
//! [`crate::ShardedServer`] instead to combine intra-query shard parallelism
//! with concurrent maintenance.

use crate::backend::{
    BackendInfo, BackendKind, ErasedBackend, MaintainableServer, QueryBackend, SnapshotSource,
};
use crate::batch::BatchExecutor;
use crate::query::EncryptedQuery;
use crate::scratch::QueryScratch;
use crate::server::{CloudServer, SearchOutcome, SearchParams};
use parking_lot::RwLock;
use ppann_dce::DceCiphertext;
use std::sync::Arc;

/// A cheaply clonable, thread-safe handle to a server backend.
pub struct SharedServer<S = CloudServer> {
    inner: Arc<RwLock<S>>,
}

impl<S> Clone for SharedServer<S> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<S> SharedServer<S> {
    /// Wraps a server.
    pub fn new(server: S) -> Self {
        Self { inner: Arc::new(RwLock::new(server)) }
    }
}

impl<S: QueryBackend> SharedServer<S> {
    /// Concurrent query path (shared lock).
    pub fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        self.inner.read().search(query, params)
    }

    /// Concurrent query path through caller-owned scratch (shared lock):
    /// the lock guards the backend, not the scratch, so long-lived workers
    /// keep their warm buffers across lock acquisitions.
    pub fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        self.inner.read().search_in(scratch, query, params)
    }
}

impl<S: MaintainableServer> SharedServer<S> {
    /// Exclusive insertion (Section V-D).
    pub fn insert(&self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32 {
        self.inner.write().insert(c_sap, c_dce)
    }

    /// Exclusive deletion (Section V-D).
    pub fn delete(&self, id: u32) {
        self.inner.write().delete(id)
    }

    /// Exclusive check-and-delete: returns `false` (leaving the backend
    /// untouched) when `id` is out of range or already deleted, instead of
    /// panicking like [`Self::delete`]. Check and removal happen under one
    /// write lock, so concurrent deletes of the same id cannot race into
    /// the panic path — this is the entry point the network service uses to
    /// turn bad maintenance requests into error frames.
    pub fn try_delete(&self, id: u32) -> bool {
        let mut guard = self.inner.write();
        if !guard.is_live(id) {
            return false;
        }
        guard.delete(id);
        true
    }

    /// Whether `id` is currently live (shared lock).
    pub fn is_live(&self, id: u32) -> bool {
        self.inner.read().is_live(id)
    }

    /// Live vector count.
    pub fn len(&self) -> usize {
        self.inner.read().live_len()
    }

    /// Total id slots allocated — the id the next insert will assign
    /// (shared lock).
    pub fn slots(&self) -> usize {
        self.inner.read().slots()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<S: BackendInfo> SharedServer<S> {
    /// Vector dimensionality served (shared lock).
    pub fn dim(&self) -> usize {
        self.inner.read().dim()
    }

    /// The wrapped backend's shape (shared lock).
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.read().kind()
    }
}

impl<S: QueryBackend + Send + Sync> QueryBackend for SharedServer<S> {
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        SharedServer::search(self, query, params)
    }

    fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        SharedServer::search_in(self, scratch, query, params)
    }
}

/// The one blanket erasure: every `SharedServer` composition — the paper's
/// `CloudServer`, the multi-core `ShardedServer`, anything implementing
/// the three capability traits — becomes a `Box<dyn ErasedBackend>` a
/// [`Catalog`](crate::Catalog) can hold next to differently-shaped
/// collections. The `RwLock` inside `SharedServer` is what makes the
/// `&self` maintenance methods of the erased trait sound.
impl<S> ErasedBackend for SharedServer<S>
where
    S: QueryBackend + MaintainableServer + BackendInfo + SnapshotSource + Send + Sync,
{
    fn search(&self, query: &EncryptedQuery, params: &SearchParams) -> SearchOutcome {
        SharedServer::search(self, query, params)
    }

    fn search_in(
        &self,
        scratch: &mut QueryScratch,
        query: &EncryptedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        SharedServer::search_in(self, scratch, query, params)
    }

    fn search_many(
        &self,
        queries: &[EncryptedQuery],
        params: &SearchParams,
        threads: usize,
    ) -> Vec<SearchOutcome> {
        BatchExecutor::new(self.clone(), threads).run(queries, params).outcomes
    }

    fn insert(&self, c_sap: Vec<f64>, c_dce: DceCiphertext) -> u32 {
        SharedServer::insert(self, c_sap, c_dce)
    }

    fn try_delete(&self, id: u32) -> bool {
        SharedServer::try_delete(self, id)
    }

    fn is_live(&self, id: u32) -> bool {
        SharedServer::is_live(self, id)
    }

    fn live_len(&self) -> usize {
        self.len()
    }

    fn slots(&self) -> usize {
        SharedServer::slots(self)
    }

    fn database_image(&self) -> bytes::Bytes {
        self.inner.read().database_image()
    }

    fn dim(&self) -> usize {
        SharedServer::dim(self)
    }

    fn kind(&self) -> BackendKind {
        self.backend_kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::{DataOwner, PpAnnParams};
    use crate::shard::ShardedServer;
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn parallel_queries_and_maintenance() {
        let mut rng = seeded_rng(161);
        let data: Vec<Vec<f64>> = (0..200).map(|_| uniform_vec(&mut rng, 6, -1.0, 1.0)).collect();
        let owner = DataOwner::setup(PpAnnParams::new(6).with_seed(9), &data);
        let shared = SharedServer::new(CloudServer::new(owner.outsource(&data)));
        let mut user = owner.authorize_user();
        let queries: Vec<_> = (0..16).map(|i| user.encrypt_query(&data[i], 5)).collect();

        std::thread::scope(|scope| {
            for chunk in queries.chunks(4) {
                let shared = shared.clone();
                scope.spawn(move || {
                    for q in chunk {
                        let out = shared.search(q, &SearchParams { k_prime: 20, ef_search: 40 });
                        assert_eq!(out.ids.len(), 5);
                    }
                });
            }
            let shared2 = shared.clone();
            let (c_sap, c_dce) = owner.encrypt_for_insert(&data[0], 99);
            scope.spawn(move || {
                let id = shared2.insert(c_sap, c_dce);
                shared2.delete(id);
            });
        });
        assert_eq!(shared.len(), 200);
    }

    #[test]
    fn shared_sharded_server_composes() {
        let mut rng = seeded_rng(162);
        let data: Vec<Vec<f64>> = (0..150).map(|_| uniform_vec(&mut rng, 6, -1.0, 1.0)).collect();
        let owner = DataOwner::setup(PpAnnParams::new(6).with_seed(10).with_beta(0.0), &data);
        let shared = SharedServer::new(ShardedServer::from_database(owner.outsource(&data), 3));
        let mut user = owner.authorize_user();
        let queries: Vec<_> = (0..8).map(|i| user.encrypt_query(&data[i], 3)).collect();

        std::thread::scope(|scope| {
            for chunk in queries.chunks(2) {
                let shared = shared.clone();
                scope.spawn(move || {
                    for q in chunk {
                        let out = shared.search(q, &SearchParams { k_prime: 15, ef_search: 30 });
                        assert_eq!(out.ids.len(), 3);
                    }
                });
            }
            let shared2 = shared.clone();
            let (c_sap, c_dce) = owner.encrypt_for_insert(&data[0], 7);
            scope.spawn(move || {
                let id = shared2.insert(c_sap, c_dce);
                shared2.delete(id);
            });
        });
        assert_eq!(shared.len(), 150);
    }
}
