//! Property-based tests of the two-server XOR PIR substrate.

use ppann_pir::{PirCost, PirDatabase, TwoServerPir};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Retrieval returns the exact target block for arbitrary databases.
    #[test]
    fn retrieval_correct(
        blocks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..80),
        index_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let block_size = blocks.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let db = PirDatabase::from_blocks(block_size, &blocks);
        let pir = TwoServerPir::new(db);
        let index = (index_seed % blocks.len() as u64) as usize;
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut cost = PirCost::default();
        let got = pir.retrieve(index, &mut rng, &mut cost);
        let mut expected = blocks[index].clone();
        expected.resize(block_size, 0);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(cost.rounds, 1);
    }

    /// Either server's view (its mask) is a uniformly random bit-vector:
    /// flipping which server gets the offset mask cannot change the result.
    #[test]
    fn servers_are_symmetric(
        n in 1usize..60,
        index_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 4]).collect();
        let pir = TwoServerPir::new(PirDatabase::from_blocks(4, &blocks));
        let index = (index_seed % n as u64) as usize;
        let mut cost = PirCost::default();
        let a = pir.retrieve(index, &mut StdRng::seed_from_u64(rng_seed), &mut cost);
        let b = pir.retrieve(index, &mut StdRng::seed_from_u64(rng_seed ^ 1), &mut cost);
        prop_assert_eq!(a, b, "answers must agree regardless of mask randomness");
    }
}
