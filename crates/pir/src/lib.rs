//! # ppann-pir
//!
//! Information-theoretic **two-server XOR private information retrieval**.
//!
//! The PACM-ANN and PRI-ANN baselines of the reproduced paper retrieve index
//! blocks (graph adjacency lists, LSH buckets) and encrypted vectors from the
//! server *without revealing which block* they fetch. This crate supplies
//! that substrate with the classic two-server scheme: the client sends a
//! uniformly random selection bit-vector to server A and the same vector with
//! the target bit flipped to server B; each server XORs together its selected
//! blocks; the client XORs the two answers to recover the target block.
//!
//! Each individual query is information-theoretically private against either
//! (non-colluding) server — and each answer costs a server a scan of ~n/2
//! blocks, which is precisely the cost behaviour that makes the PIR-based
//! baselines slow in Figures 7 and 9.
//!
//! ```
//! use ppann_pir::{PirCost, PirDatabase, TwoServerPir};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let db = PirDatabase::from_blocks(4, &[vec![1, 2, 3, 4], vec![5, 6, 7, 8]]);
//! let pir = TwoServerPir::new(db);
//! let mut cost = PirCost::default();
//! let block = pir.retrieve(1, &mut StdRng::seed_from_u64(0), &mut cost);
//! assert_eq!(block, vec![5, 6, 7, 8]);
//! ```

mod cost;
mod database;
mod protocol;

pub use cost::PirCost;
pub use database::PirDatabase;
pub use protocol::{PirQuery, PirServer, TwoServerPir};
