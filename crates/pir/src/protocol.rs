//! The two-server XOR PIR protocol.

use crate::cost::PirCost;
use crate::database::PirDatabase;
use rand::Rng;

/// A client query: one selection mask per server. Server B's mask differs
/// from server A's in exactly the target bit, so neither mask alone carries
/// any information about the target index.
#[derive(Clone, Debug)]
pub struct PirQuery {
    mask_a: Vec<u64>,
    mask_b: Vec<u64>,
}

impl PirQuery {
    /// Builds a query for block `index` of an `n`-block database.
    pub fn new(index: usize, n: usize, rng: &mut impl Rng) -> Self {
        assert!(index < n, "PIR index {index} out of range (n = {n})");
        let words = n.div_ceil(64);
        let mask_a: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        let mut mask_b = mask_a.clone();
        mask_b[index / 64] ^= 1u64 << (index % 64);
        // Clear padding bits beyond n so server work counters stay honest.
        if !n.is_multiple_of(64) {
            let keep = (1u64 << (n % 64)) - 1;
            let last = words - 1;
            let mut q = Self { mask_a, mask_b };
            q.mask_a[last] &= keep;
            q.mask_b[last] &= keep;
            return q;
        }
        Self { mask_a, mask_b }
    }

    /// Upload size of both masks in bytes.
    pub fn upload_bytes(&self) -> u64 {
        ((self.mask_a.len() + self.mask_b.len()) * 8) as u64
    }

    /// The mask destined for server A.
    pub fn mask_a(&self) -> &[u64] {
        &self.mask_a
    }

    /// The mask destined for server B.
    pub fn mask_b(&self) -> &[u64] {
        &self.mask_b
    }
}

/// One of the two non-colluding PIR servers.
#[derive(Clone, Debug)]
pub struct PirServer {
    db: PirDatabase,
}

impl PirServer {
    /// Spins up a server over a database replica.
    pub fn new(db: PirDatabase) -> Self {
        Self { db }
    }

    /// Answers a selection mask: XOR of the selected blocks. Also returns the
    /// number of blocks scanned (the server-side work).
    pub fn answer(&self, mask: &[u64]) -> (Vec<u8>, u64) {
        assert!(mask.len() * 64 >= self.db.len(), "mask shorter than database");
        self.db.xor_selected(mask)
    }

    /// The database replica held by this server.
    pub fn database(&self) -> &PirDatabase {
        &self.db
    }
}

/// Convenience wrapper running the full two-server protocol in-process.
pub struct TwoServerPir {
    server_a: PirServer,
    server_b: PirServer,
}

impl TwoServerPir {
    /// Replicates `db` onto two fresh servers.
    pub fn new(db: PirDatabase) -> Self {
        Self { server_a: PirServer::new(db.clone()), server_b: PirServer::new(db) }
    }

    /// Number of blocks in the replicated database.
    pub fn len(&self) -> usize {
        self.server_a.database().len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.server_a.database().block_size()
    }

    /// Privately retrieves block `index`, recording costs into `cost`.
    pub fn retrieve(&self, index: usize, rng: &mut impl Rng, cost: &mut PirCost) -> Vec<u8> {
        let q = PirQuery::new(index, self.len(), rng);
        let (ans_a, work_a) = self.server_a.answer(q.mask_a());
        let (ans_b, work_b) = self.server_b.answer(q.mask_b());
        cost.absorb(PirCost {
            bytes_up: q.upload_bytes(),
            bytes_down: (ans_a.len() + ans_b.len()) as u64,
            server_blocks: work_a + work_b,
            rounds: 1,
        });
        ans_a.iter().zip(&ans_b).map(|(a, b)| a ^ b).collect()
    }

    /// Retrieves several blocks in one round (the masks travel together, so
    /// only one round is counted — PRI-ANN's single-round bucket fetch).
    pub fn retrieve_batch(
        &self,
        indices: &[usize],
        rng: &mut impl Rng,
        cost: &mut PirCost,
    ) -> Vec<Vec<u8>> {
        let out: Vec<Vec<u8>> = indices.iter().map(|&i| self.retrieve(i, rng, cost)).collect();
        // Collapse the per-retrieve round counts into a single round.
        cost.rounds -= indices.len().saturating_sub(1) as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> PirDatabase {
        PirDatabase::from_blocks(8, &(0..100u8).map(|i| vec![i; 8]).collect::<Vec<_>>())
    }

    #[test]
    fn retrieves_correct_block() {
        let pir = TwoServerPir::new(db());
        let mut rng = StdRng::seed_from_u64(1);
        let mut cost = PirCost::default();
        for idx in [0usize, 1, 63, 64, 99] {
            let block = pir.retrieve(idx, &mut rng, &mut cost);
            assert_eq!(block, vec![idx as u8; 8], "index {idx}");
        }
        assert_eq!(cost.rounds, 5);
        assert!(cost.server_blocks > 0);
    }

    #[test]
    fn masks_differ_only_at_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = PirQuery::new(70, 100, &mut rng);
        let diff: Vec<usize> = (0..100)
            .filter(|i| (q.mask_a()[i / 64] ^ q.mask_b()[i / 64]) >> (i % 64) & 1 == 1)
            .collect();
        assert_eq!(diff, vec![70]);
    }

    #[test]
    fn server_work_is_about_half_the_database() {
        let pir = TwoServerPir::new(db());
        let mut rng = StdRng::seed_from_u64(3);
        let mut cost = PirCost::default();
        for _ in 0..50 {
            pir.retrieve(10, &mut rng, &mut cost);
        }
        // Both servers each scan ~n/2 blocks per query.
        let per_query = cost.server_blocks as f64 / 50.0;
        assert!((80.0..120.0).contains(&per_query), "per-query work {per_query}");
    }

    #[test]
    fn batch_counts_one_round() {
        let pir = TwoServerPir::new(db());
        let mut rng = StdRng::seed_from_u64(4);
        let mut cost = PirCost::default();
        let blocks = pir.retrieve_batch(&[1, 2, 3], &mut rng, &mut cost);
        assert_eq!(blocks.len(), 3);
        assert_eq!(cost.rounds, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        PirQuery::new(100, 100, &mut rng);
    }
}
