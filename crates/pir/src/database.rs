//! The replicated block database both PIR servers hold.

use bytes::Bytes;

/// A database of `n` fixed-size blocks, replicated verbatim on both servers.
#[derive(Clone, Debug)]
pub struct PirDatabase {
    block_size: usize,
    blocks: Vec<u8>,
}

impl PirDatabase {
    /// Builds a database from equally-padded blocks.
    ///
    /// Every block is padded (with zeros) to `block_size`; blocks larger than
    /// `block_size` are rejected.
    pub fn from_blocks(block_size: usize, items: &[Vec<u8>]) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = vec![0u8; block_size * items.len()];
        for (i, item) in items.iter().enumerate() {
            assert!(
                item.len() <= block_size,
                "block {i} has {} bytes, exceeds block size {block_size}",
                item.len()
            );
            blocks[i * block_size..i * block_size + item.len()].copy_from_slice(item);
        }
        Self { block_size, blocks }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len() / self.block_size
    }

    /// True when the database holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Direct (non-private) block access — used by tests and by the client
    /// after decoding to compare.
    pub fn block(&self, i: usize) -> &[u8] {
        &self.blocks[i * self.block_size..(i + 1) * self.block_size]
    }

    /// XOR of all blocks whose bit is set in `mask`, plus the number of
    /// blocks touched (the server-side work of one answer).
    pub(crate) fn xor_selected(&self, mask: &[u64]) -> (Vec<u8>, u64) {
        let mut acc = vec![0u8; self.block_size];
        let mut touched = 0u64;
        for i in 0..self.len() {
            if mask[i / 64] >> (i % 64) & 1 == 1 {
                touched += 1;
                let b = self.block(i);
                for (a, x) in acc.iter_mut().zip(b) {
                    *a ^= x;
                }
            }
        }
        (acc, touched)
    }

    /// Immutable snapshot of the raw storage (for shipping to a server).
    pub fn snapshot(&self) -> Bytes {
        Bytes::copy_from_slice(&self.blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_and_access() {
        let db = PirDatabase::from_blocks(4, &[vec![1, 2], vec![3, 4, 5, 6]]);
        assert_eq!(db.len(), 2);
        assert_eq!(db.block(0), &[1, 2, 0, 0]);
        assert_eq!(db.block(1), &[3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "exceeds block size")]
    fn oversized_block_rejected() {
        PirDatabase::from_blocks(2, &[vec![1, 2, 3]]);
    }

    #[test]
    fn xor_selected_counts_work() {
        let db = PirDatabase::from_blocks(1, &[vec![1], vec![2], vec![4], vec![8]]);
        let mask = vec![0b1011u64];
        let (acc, touched) = db.xor_selected(&mask);
        assert_eq!(acc, vec![1 ^ 2 ^ 8]);
        assert_eq!(touched, 3);
    }
}
