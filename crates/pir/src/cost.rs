//! Cost accounting shared by the PIR-based baselines.

/// Accumulated costs of a sequence of PIR interactions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PirCost {
    /// Bytes uploaded by the client (selection masks).
    pub bytes_up: u64,
    /// Bytes downloaded by the client (server answers).
    pub bytes_down: u64,
    /// Blocks XOR-scanned across both servers.
    pub server_blocks: u64,
    /// Number of query rounds.
    pub rounds: u64,
}

impl PirCost {
    /// Merges another cost record into this one.
    pub fn absorb(&mut self, other: PirCost) {
        self.bytes_up += other.bytes_up;
        self.bytes_down += other.bytes_down;
        self.server_blocks += other.server_blocks;
        self.rounds += other.rounds;
    }

    /// Total communication in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = PirCost { bytes_up: 1, bytes_down: 2, server_blocks: 3, rounds: 1 };
        a.absorb(PirCost { bytes_up: 10, bytes_down: 20, server_blocks: 30, rounds: 1 });
        assert_eq!(a, PirCost { bytes_up: 11, bytes_down: 22, server_blocks: 33, rounds: 2 });
        assert_eq!(a.total_bytes(), 33);
    }
}
