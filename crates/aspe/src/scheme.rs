//! ASPE and the distance-leaking variants of paper Section III-A.

use ppann_linalg::vector::{dot, norm_sq};
use ppann_linalg::{random_invertible, Matrix};
use rand::Rng;

/// Which transformation of the distance the scheme leaks.
///
/// These correspond one-to-one to the cases analyzed in the paper:
/// Theorem 1 (linear), Corollary 1 (exponential), Corollary 2 (logarithmic)
/// and Theorem 2 (square).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceLeak {
    /// `L = r₁·dist + c_q` (affine in the distance).
    Linear,
    /// `L = exp(r₁·dist + c_q)`.
    Exponential,
    /// `L = ln(r₁·dist + c_q)` with `c_q` chosen to keep the input positive.
    Logarithmic,
    /// `L = r₁·(dist − ‖q‖² + r₂)² + r₃` with `r₂ ≥ ‖q‖²` for monotonicity.
    Square,
}

/// Ciphertext of a database vector: `Mᵀ·[−2pᵀ, ‖p‖², 1]ᵀ ∈ R^{d+2}`.
#[derive(Clone, Debug, PartialEq)]
pub struct AspeCiphertext(pub Vec<f64>);

/// Trapdoor of a query (with its per-query randomness baked in).
#[derive(Clone, Debug, PartialEq)]
pub struct AspeTrapdoor(pub Vec<f64>);

/// An ASPE secret key: the invertible matrix `M` and the leak flavor.
pub struct AspeKey {
    dim: usize,
    leak: DistanceLeak,
    m_t: Matrix,
    m_inv: Matrix,
}

impl AspeKey {
    /// Generates a key for `dim`-dimensional vectors.
    pub fn generate(dim: usize, leak: DistanceLeak, rng: &mut impl Rng) -> Self {
        assert!(dim > 0);
        let (m, m_inv) = random_invertible(dim + 2, rng);
        Self { dim, leak, m_t: m.transpose(), m_inv }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The leak flavor of this key.
    pub fn leak_kind(&self) -> DistanceLeak {
        self.leak
    }

    /// The augmented plaintext `p′ = [−2pᵀ, ‖p‖², 1]` whose inner product
    /// with `q′ = [r₁qᵀ, r₁, r₂]` is affine in `dist(p, q)`.
    pub fn augment_data(p: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(p.len() + 2);
        out.extend(p.iter().map(|x| -2.0 * x));
        out.push(norm_sq(p));
        out.push(1.0);
        out
    }

    /// Encrypts a database vector (deterministic: the scheme's randomness is
    /// all query-side, which is exactly its weakness).
    pub fn encrypt_data(&self, p: &[f64]) -> AspeCiphertext {
        assert_eq!(p.len(), self.dim, "encrypt_data: dimension mismatch");
        AspeCiphertext(self.m_t.matvec(&Self::augment_data(p)))
    }

    /// Creates a query trapdoor with fresh per-query randomness.
    pub fn trapdoor(&self, q: &[f64], rng: &mut impl Rng) -> AspeTrapdoor {
        assert_eq!(q.len(), self.dim, "trapdoor: dimension mismatch");
        let r1 = rng.gen_range(0.5..2.0);
        let (r2, r3) = match self.leak {
            // Keep ln's argument strictly positive: r₂ ≥ r₁‖q‖² + margin.
            DistanceLeak::Logarithmic => (r1 * norm_sq(q) + rng.gen_range(0.5..2.0), 0.0),
            // Square: r₂ ≥ r₁‖q‖² keeps the parabola monotone over dist ≥ 0
            // (the squared affine form r₁·dist + (r₂ − r₁‖q‖²) stays ≥ 0).
            DistanceLeak::Square => {
                (r1 * norm_sq(q) + rng.gen_range(0.5..2.0), rng.gen_range(-1.0..1.0))
            }
            _ => (rng.gen_range(-2.0..2.0), 0.0),
        };
        let mut qp = Vec::with_capacity(self.dim + 2);
        qp.extend(q.iter().map(|x| r1 * x));
        qp.push(r1);
        qp.push(r2);
        let inner = self.m_inv.matvec(&qp);
        match self.leak {
            DistanceLeak::Square => {
                // The square leak needs r₁ (outer scale) and r₃ (offset)
                // applied *after* the bilinear form; ship them in the clear
                // appendix of the trapdoor exactly like the paper's scheme
                // ships its transformation parameters server-side.
                let mut t = inner;
                t.push(r1);
                t.push(r3);
                AspeTrapdoor(t)
            }
            _ => AspeTrapdoor(inner),
        }
    }

    /// The value the server observes for the pair `(C_p, T_q)` — a
    /// deterministic transformation of `dist(p, q)`.
    pub fn leak(&self, cp: &AspeCiphertext, tq: &AspeTrapdoor) -> f64 {
        let raw = match self.leak {
            DistanceLeak::Square => dot(&cp.0, &tq.0[..tq.0.len() - 2]),
            _ => dot(&cp.0, &tq.0),
        };
        match self.leak {
            DistanceLeak::Linear => raw,
            DistanceLeak::Exponential => raw.exp(),
            DistanceLeak::Logarithmic => raw.ln(),
            DistanceLeak::Square => {
                let r1 = tq.0[tq.0.len() - 2];
                let r3 = tq.0[tq.0.len() - 1];
                // raw = r₁·(dist − ‖q‖² + r₂); the leak squares the affine
                // form, rescales and offsets it.
                (raw / r1) * (raw / r1) * r1 + r3
            }
        }
    }

    /// Compares two database vectors by distance to the query using only
    /// leaked values (what an honest server does with this scheme).
    pub fn closer(&self, ca: &AspeCiphertext, cb: &AspeCiphertext, tq: &AspeTrapdoor) -> bool {
        self.leak(ca, tq) < self.leak(cb, tq)
    }
}

impl std::fmt::Debug for AspeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AspeKey")
            .field("dim", &self.dim)
            .field("leak", &self.leak)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::vector::squared_euclidean;
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn comparisons_agree_with_plaintext_for_all_leaks() {
        let mut rng = seeded_rng(81);
        for leak in [
            DistanceLeak::Linear,
            DistanceLeak::Exponential,
            DistanceLeak::Logarithmic,
            DistanceLeak::Square,
        ] {
            let d = 6;
            let key = AspeKey::generate(d, leak, &mut rng);
            let q = uniform_vec(&mut rng, d, -1.0, 1.0);
            let tq = key.trapdoor(&q, &mut rng);
            for _ in 0..40 {
                let a = uniform_vec(&mut rng, d, -1.0, 1.0);
                let b = uniform_vec(&mut rng, d, -1.0, 1.0);
                let truth = squared_euclidean(&a, &q) < squared_euclidean(&b, &q);
                let got = key.closer(&key.encrypt_data(&a), &key.encrypt_data(&b), &tq);
                assert_eq!(got, truth, "leak {leak:?}");
            }
        }
    }

    #[test]
    fn linear_leak_is_affine_in_distance() {
        let mut rng = seeded_rng(82);
        let d = 5;
        let key = AspeKey::generate(d, DistanceLeak::Linear, &mut rng);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let tq = key.trapdoor(&q, &mut rng);
        // Fit a line through two (dist, leak) pairs, check a third.
        let pts: Vec<Vec<f64>> = (0..3).map(|_| uniform_vec(&mut rng, d, -1.0, 1.0)).collect();
        let obs: Vec<(f64, f64)> = pts
            .iter()
            .map(|p| (squared_euclidean(p, &q), key.leak(&key.encrypt_data(p), &tq)))
            .collect();
        let slope = (obs[1].1 - obs[0].1) / (obs[1].0 - obs[0].0);
        let intercept = obs[0].1 - slope * obs[0].0;
        assert!((obs[2].1 - (slope * obs[2].0 + intercept)).abs() < 1e-6);
        assert!(slope > 0.0, "r1 must be positive");
    }

    #[test]
    fn log_leak_is_finite() {
        let mut rng = seeded_rng(83);
        let d = 4;
        let key = AspeKey::generate(d, DistanceLeak::Logarithmic, &mut rng);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let tq = key.trapdoor(&q, &mut rng);
        for _ in 0..50 {
            let p = uniform_vec(&mut rng, d, -1.0, 1.0);
            let l = key.leak(&key.encrypt_data(&p), &tq);
            assert!(l.is_finite());
        }
    }

    #[test]
    fn data_encryption_is_deterministic_query_is_not() {
        let mut rng = seeded_rng(84);
        let d = 4;
        let key = AspeKey::generate(d, DistanceLeak::Linear, &mut rng);
        let p = uniform_vec(&mut rng, d, -1.0, 1.0);
        assert_eq!(key.encrypt_data(&p), key.encrypt_data(&p));
        assert_ne!(key.trapdoor(&p, &mut rng), key.trapdoor(&p, &mut rng));
    }
}
