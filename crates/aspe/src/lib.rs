//! # ppann-aspe
//!
//! **Asymmetric scalar-product-preserving encryption (ASPE)** and its
//! "enhanced" variants, together with the **known-plaintext attacks** that
//! the reproduced paper uses to rule them out (Section III-A, Theorems 1–2,
//! Corollaries 1–2).
//!
//! ASPE (Wong et al., SIGMOD 2009) hides vectors behind a secret invertible
//! matrix: `C_p = Mᵀ·p′`, `T_q = M⁻¹·q′`, so `C_pᵀ·T_q = p′ᵀ·q′` leaks a
//! fixed transformation of `dist(p, q)`. The enhanced variants wrap that
//! leak in a linear / exponential / logarithmic / square transformation.
//! The paper proves — and [`attack`] demonstrates constructively — that an
//! attacker holding `d+2` known plaintexts (or `0.5d²+2.5d+3` for the square
//! variant) recovers every query and then every database vector by solving
//! linear systems. This crate exists so the attack is *runnable*, not just
//! citable: see `examples/kpa_attack.rs` at the workspace root.
//!
//! ```
//! use ppann_aspe::{AspeKey, DistanceLeak};
//! use ppann_linalg::seeded_rng;
//!
//! let mut rng = seeded_rng(5);
//! let key = AspeKey::generate(4, DistanceLeak::Linear, &mut rng);
//! let p = [0.5, 0.1, -0.3, 0.9];
//! let q = [0.0, 0.2, -0.1, 0.4];
//! let cp = key.encrypt_data(&p);
//! let tq = key.trapdoor(&q, &mut rng);
//! // The leak is monotone in dist(p, q), so comparisons work…
//! // …and that is exactly what the KPA attack exploits.
//! let _ = key.leak(&cp, &tq);
//! ```

pub mod attack;
mod scheme;

pub use attack::{recover_database_vector, recover_query, recover_query_square};
pub use scheme::{AspeCiphertext, AspeKey, AspeTrapdoor, DistanceLeak};
