//! The known-plaintext attacks of paper Section III-A, implemented
//! constructively.
//!
//! Threat model: the attacker holds the encrypted database `C_P`, the
//! encrypted queries `C_Q`, and a leaked subset `P_leak ⊂ P` of plaintexts
//! (`|P_leak| = d+2`, or `0.5d²+2.5d+3` for the square variant). Because the
//! server can evaluate `L(C_p, T_q)` for every pair, the attacker sees a
//! known transformation of every `dist(p, q)` — and linear algebra does the
//! rest.

use crate::scheme::{AspeKey, DistanceLeak};
use ppann_linalg::vector::norm_sq;
use ppann_linalg::{LuDecomposition, Matrix};

/// Inverts the scalar transformation so every variant reduces to the linear
/// case of Theorem 1 (Corollaries 1–2 do exactly this substitution).
fn to_linear_scale(leak: DistanceLeak, observed: f64) -> f64 {
    match leak {
        DistanceLeak::Linear => observed,
        DistanceLeak::Exponential => observed.ln(),
        DistanceLeak::Logarithmic => observed.exp(),
        DistanceLeak::Square => {
            panic!("square leak needs the linearization attack (recover_query_square)")
        }
    }
}

/// **Theorem 1 / Corollaries 1–2** — recovers a query vector `q` from `d+2`
/// known plaintexts and the leaked values `L(C_pᵢ, T_q)`.
///
/// Builds the system `[−2pᵢᵀ, ‖pᵢ‖², 1]·x = Lᵢ` whose unknown is
/// `x = [r₁qᵀ, r₁, r₂]`, solves it, and divides out `r₁`.
/// Returns `(q, r1, r2)` so the second attack stage can reuse the
/// per-query randomness.
///
/// # Panics
/// Panics if fewer than `d+2` plaintexts are supplied or the system is
/// singular (non-generic plaintexts).
pub fn recover_query(
    key_leak: DistanceLeak,
    known_plaintexts: &[Vec<f64>],
    observed: &[f64],
) -> (Vec<f64>, f64, f64) {
    let d = known_plaintexts[0].len();
    assert!(
        known_plaintexts.len() >= d + 2 && observed.len() >= d + 2,
        "need d+2 = {} known plaintexts, got {}",
        d + 2,
        known_plaintexts.len()
    );
    let mut rows = Vec::with_capacity(d + 2);
    let mut b = Vec::with_capacity(d + 2);
    for (p, &l) in known_plaintexts.iter().zip(observed).take(d + 2) {
        rows.push(AspeKey::augment_data(p));
        b.push(to_linear_scale(key_leak, l));
    }
    let mc = Matrix::from_vec(d + 2, d + 2, rows.concat());
    let x = LuDecomposition::factor(&mc)
        .expect("known plaintexts must be in general position")
        .solve(&b)
        .expect("dimension mismatch");
    let r1 = x[d];
    let q = x[..d].iter().map(|v| v / r1).collect();
    (q, r1, x[d + 1])
}

/// **Theorem 1, second stage** — recovers an *unknown database vector* `p`
/// from `d+2` previously recovered queries `(qⱼ, r₁ⱼ, r₂ⱼ)` and the leaks
/// `L(C_p, T_qⱼ)`.
///
/// The unknown is `y = [−2pᵀ, ‖p‖²]`; each query yields the equation
/// `y·[r₁ⱼqⱼᵀ, r₁ⱼ] = Lⱼ − r₂ⱼ`.
pub fn recover_database_vector(
    key_leak: DistanceLeak,
    queries: &[(Vec<f64>, f64, f64)],
    observed: &[f64],
) -> Vec<f64> {
    let d = queries[0].0.len();
    assert!(queries.len() > d && observed.len() > d, "need at least d+1 recovered queries");
    let mut rows = Vec::with_capacity(d + 1);
    let mut b = Vec::with_capacity(d + 1);
    for ((q, r1, r2), &l) in queries.iter().zip(observed).take(d + 1) {
        let mut row = Vec::with_capacity(d + 1);
        row.extend(q.iter().map(|v| r1 * v));
        row.push(*r1);
        rows.push(row);
        b.push(to_linear_scale(key_leak, l) - r2);
    }
    let a = Matrix::from_vec(d + 1, d + 1, rows.concat());
    let y = LuDecomposition::factor(&a)
        .expect("recovered queries must be in general position")
        .solve(&b)
        .expect("dimension mismatch");
    y[..d].iter().map(|v| -v / 2.0).collect()
}

/// Degree-≤4 monomial features of `p` used by the square-leak linearization:
/// `[1, pᵢ, pᵢpⱼ (i≤j), ‖p‖²pᵢ, ‖p‖⁴]`.
///
/// The paper's basis also lists `‖p‖²`, but as a function of `p` it equals
/// `Σᵢ pᵢ²` — a linear combination of the `pᵢpⱼ` columns — so including it
/// would make the design matrix singular; the attack drops it and lets the
/// solver fold its weight into the `pᵢ²` coefficients.
fn square_features(p: &[f64]) -> Vec<f64> {
    let d = p.len();
    let nsq = norm_sq(p);
    let mut f = Vec::with_capacity(square_feature_dim(d));
    f.push(1.0);
    f.extend_from_slice(p);
    for i in 0..d {
        for j in i..d {
            f.push(p[i] * p[j]);
        }
    }
    f.extend(p.iter().map(|x| nsq * x));
    f.push(nsq * nsq);
    f
}

/// Number of features: `0.5d² + 2.5d + 2` (the paper's `0.5d² + 2.5d + 3`
/// minus the redundant `‖p‖²` column).
pub fn square_feature_dim(d: usize) -> usize {
    1 + d + d * (d + 1) / 2 + d + 1
}

/// **Theorem 2** — recovers a query from the square-leaking variant given
/// `0.5d² + 2.5d + 2` known plaintexts in general position.
///
/// Fits the leak as a linear function of the monomial features, then reads
/// `q` off the fitted coefficients: the `‖p‖⁴` coefficient is `r₁` and the
/// `‖p‖²pᵢ` coefficient is `−4r₁qᵢ`.
pub fn recover_query_square(known_plaintexts: &[Vec<f64>], observed: &[f64]) -> Vec<f64> {
    let d = known_plaintexts[0].len();
    let m = square_feature_dim(d);
    assert!(
        known_plaintexts.len() >= m && observed.len() >= m,
        "need {m} known plaintexts for d = {d}, got {}",
        known_plaintexts.len()
    );
    let mut rows = Vec::with_capacity(m);
    for p in known_plaintexts.iter().take(m) {
        rows.push(square_features(p));
    }
    let a = Matrix::from_vec(m, m, rows.concat());
    let c = LuDecomposition::factor(&a)
        .expect("known plaintexts must be in general position")
        .solve(&observed[..m])
        .expect("dimension mismatch");
    // Feature layout: [1 | p (d) | pᵢpⱼ (d(d+1)/2) | ‖p‖²p (d) | ‖p‖⁴].
    let r1 = c[m - 1];
    let base = 1 + d + d * (d + 1) / 2;
    (0..d).map(|i| -c[base + i] / (4.0 * r1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::AspeKey;
    use ppann_linalg::vector::max_abs_diff;
    use ppann_linalg::{seeded_rng, uniform_vec};

    use crate::scheme::{AspeCiphertext, AspeTrapdoor};

    fn leaks_for(
        key: &AspeKey,
        plaintexts: &[Vec<f64>],
        tq: &AspeTrapdoor,
    ) -> (Vec<AspeCiphertext>, Vec<f64>) {
        let cts: Vec<AspeCiphertext> = plaintexts.iter().map(|p| key.encrypt_data(p)).collect();
        let ls = cts.iter().map(|c| key.leak(c, tq)).collect();
        (cts, ls)
    }

    #[test]
    fn theorem_1_recovers_queries_and_database() {
        let mut rng = seeded_rng(91);
        for leak in [DistanceLeak::Linear, DistanceLeak::Exponential, DistanceLeak::Logarithmic] {
            let d = 8;
            let key = AspeKey::generate(d, leak, &mut rng);
            let p_leak: Vec<Vec<f64>> =
                (0..d + 2).map(|_| uniform_vec(&mut rng, d, -1.0, 1.0)).collect();

            // Stage 1: recover d+2 distinct queries.
            let mut recovered = Vec::new();
            let mut trapdoors = Vec::new();
            for _ in 0..d + 2 {
                let q = uniform_vec(&mut rng, d, -1.0, 1.0);
                let tq = key.trapdoor(&q, &mut rng);
                let (_, ls) = leaks_for(&key, &p_leak, &tq);
                let (q_hat, r1, r2) = recover_query(leak, &p_leak, &ls);
                assert!(max_abs_diff(&q_hat, &q) < 1e-6, "leak {leak:?}: query not recovered");
                recovered.push((q_hat, r1, r2));
                trapdoors.push(tq);
            }

            // Stage 2: recover a database vector outside P_leak.
            let secret_p = uniform_vec(&mut rng, d, -1.0, 1.0);
            let cp = key.encrypt_data(&secret_p);
            let obs: Vec<f64> = trapdoors.iter().map(|t| key.leak(&cp, t)).collect();
            let p_hat = recover_database_vector(leak, &recovered, &obs);
            assert!(
                max_abs_diff(&p_hat, &secret_p) < 1e-6,
                "leak {leak:?}: database vector not recovered"
            );
        }
    }

    #[test]
    fn theorem_2_square_linearization() {
        let mut rng = seeded_rng(92);
        let d = 5;
        let key = AspeKey::generate(d, DistanceLeak::Square, &mut rng);
        let m = square_feature_dim(d);
        let p_leak: Vec<Vec<f64>> = (0..m).map(|_| uniform_vec(&mut rng, d, -1.0, 1.0)).collect();
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let tq = key.trapdoor(&q, &mut rng);
        let (_, ls) = leaks_for(&key, &p_leak, &tq);
        let q_hat = recover_query_square(&p_leak, &ls);
        assert!(max_abs_diff(&q_hat, &q) < 1e-5, "square attack failed: {q_hat:?} vs {q:?}");
    }

    #[test]
    fn feature_dim_formula() {
        // 0.5d² + 2.5d + 2 (paper's count minus the aliased ‖p‖² column).
        assert_eq!(square_feature_dim(4), 1 + 4 + 10 + 4 + 1); // = 20
        assert_eq!(square_feature_dim(5), 1 + 5 + 15 + 5 + 1); // = 27
        assert_eq!(square_feature_dim(5), (25 + 5 * 5 + 4) / 2); // 0.5d²+2.5d+2
    }

    #[test]
    #[should_panic(expected = "need d+2")]
    fn too_few_plaintexts_rejected() {
        recover_query(DistanceLeak::Linear, &[vec![0.0, 0.0]], &[1.0]);
    }
}
