//! Property-based tests: the KPA attack succeeds for arbitrary dimensions,
//! keys and query vectors — insecurity is not an artifact of one seed.

use ppann_aspe::{recover_query, AspeKey, DistanceLeak};
use ppann_linalg::{seeded_rng, uniform_vec, vector};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn attack_always_recovers_query(
        d in 2usize..10,
        seed in 0u64..10_000,
        leak_idx in 0usize..3,
    ) {
        let leak = [DistanceLeak::Linear, DistanceLeak::Exponential, DistanceLeak::Logarithmic][leak_idx];
        let mut rng = seeded_rng(seed);
        let key = AspeKey::generate(d, leak, &mut rng);
        let known: Vec<Vec<f64>> = (0..d + 2).map(|_| uniform_vec(&mut rng, d, -1.0, 1.0)).collect();
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let tq = key.trapdoor(&q, &mut rng);
        let observed: Vec<f64> =
            known.iter().map(|p| key.leak(&key.encrypt_data(p), &tq)).collect();
        let (q_hat, r1, _) = recover_query(leak, &known, &observed);
        prop_assert!(r1.abs() > 1e-9);
        prop_assert!(vector::max_abs_diff(&q_hat, &q) < 1e-5, "recovery failed");
    }
}
