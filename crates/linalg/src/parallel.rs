//! Scoped-thread parallel map for one-off bulk jobs.
//!
//! Bulk database encryption (DCE: O(d²) per vector; AME: 32 mat-vecs per
//! vector) and brute-force ground truth are embarrassingly parallel and run
//! once per experiment, so they are spread across scoped threads. Search-path
//! code never uses this module: the paper reports single-threaded search.

/// Number of worker threads to use for bulk jobs.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Computes `f(0), f(1), …, f(n-1)` in parallel, preserving index order.
///
/// Work is split into contiguous chunks, one per thread, so per-item overhead
/// stays negligible even for millions of cheap items.
pub fn parallel_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = available_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut pieces: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            pieces.push(h.join().expect("parallel_map_indexed worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in pieces {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_indexed(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(parallel_map_indexed(0, |i| i).is_empty());
        assert_eq!(parallel_map_indexed(1, |i| i + 7), vec![7]);
    }
}
