//! Random permutations of vector coordinates.
//!
//! DCE uses two secret permutations (`π₁` over `R^d`, `π₂` over `R^{d+8}`) to
//! scatter coordinates before and after matrix encryption. A permutation is
//! stored as a "take-from" map: `apply(v)[i] = v[map[i]]`, which makes the
//! inner-product-preservation property trivial to reason about — applying the
//! *same* permutation to both operands of a dot product leaves it unchanged.

use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation of `n` coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `apply(v)[i] = v[map[i]]`.
    map: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Self { map: (0..n as u32).collect() }
    }

    /// A uniformly random permutation on `n` elements (Fisher–Yates).
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        let mut map: Vec<u32> = (0..n as u32).collect();
        map.shuffle(rng);
        Self { map }
    }

    /// Constructs a permutation from an explicit take-from map.
    ///
    /// # Panics
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn from_map(map: Vec<u32>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &m in &map {
            let m = m as usize;
            assert!(m < n && !seen[m], "from_map: not a permutation");
            seen[m] = true;
        }
        Self { map }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The raw take-from map.
    pub fn map(&self) -> &[u32] {
        &self.map
    }

    /// Applies the permutation: `out[i] = v[map[i]]`.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.map.len(), "apply: dimension mismatch");
        self.map.iter().map(|&j| v[j as usize]).collect()
    }

    /// The inverse permutation (`inverse().apply(apply(v)) == v`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j as usize] = i as u32;
        }
        Permutation { map: inv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::vector::dot;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(4);
        assert_eq!(p.apply(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = seeded_rng(1);
        let p = Permutation::random(17, &mut rng);
        let v: Vec<f64> = (0..17).map(|i| i as f64).collect();
        assert_eq!(p.inverse().apply(&p.apply(&v)), v);
        assert_eq!(p.apply(&p.inverse().apply(&v)), v);
    }

    #[test]
    fn same_permutation_preserves_inner_product() {
        let mut rng = seeded_rng(2);
        let p = Permutation::random(32, &mut rng);
        let a: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..32).map(|i| (i as f64).cos()).collect();
        let lhs = dot(&p.apply(&a), &p.apply(&b));
        assert!((lhs - dot(&a, &b)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_map_rejects_duplicates() {
        Permutation::from_map(vec![0, 0, 1]);
    }
}
