//! Row-major dense matrices.
//!
//! The PP-ANNS schemes only need a handful of operations — matrix-vector and
//! vector-matrix products, multiplication, transposition and row slicing —
//! but they need them on matrices up to `(2d+16) × (2d+16)` (≈ 2000² for the
//! GIST-like workload), so the storage is a single flat buffer and the inner
//! loops run over contiguous rows.

use crate::vector::dot;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices (test helper).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), x)).collect()
    }

    /// Vector-matrix product `xᵀ·A`, returned as a plain vector.
    ///
    /// This is the hot operation of DCE encryption (`p̄ᵀ·M_up`): it walks the
    /// matrix row by row so the access pattern stays sequential.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vecmat: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, r) in out.iter_mut().zip(row) {
                *o += xi * r;
            }
        }
        out
    }

    /// Matrix product `A·B`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps both `other` and `out` accesses sequential.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Copy of the row range `lo..hi` as a new `(hi-lo) × cols` matrix.
    ///
    /// Used to split `M₃` into `M_up` / `M_down` (paper Section IV-A).
    pub fn row_block(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows, "row_block: out of range");
        Matrix::from_vec(hi - lo, self.cols, self.data[lo * self.cols..hi * self.cols].to_vec())
    }

    /// Largest absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Fills the matrix with samples from `f`.
    pub fn fill_with(&mut self, mut f: impl FnMut() -> f64) {
        for v in &mut self.data {
            *v = f();
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(5);
        let x = vec![1.0, -2.0, 3.0, 0.5, 4.0];
        assert_eq!(m.matvec(&x), x);
        assert_eq!(m.vecmat(&x), x);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn vecmat_equals_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [0.5, -1.5];
        assert_eq!(a.vecmat(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn row_block_splits_matrix() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let up = m.row_block(0, 2);
        let down = m.row_block(2, 4);
        assert_eq!(up, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        assert_eq!(down, Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_dims() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
