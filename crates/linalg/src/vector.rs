//! Dense `f64` vector kernels.
//!
//! These are the hot loops of the whole system: a single HNSW search performs
//! thousands of [`squared_euclidean`] calls and every DCE secure comparison
//! reduces to three fused element-wise passes. All kernels take plain slices
//! so callers can keep their data in flat, cache-friendly buffers.
//!
//! The reduction kernels ([`dot`], [`squared_euclidean`], [`norm_sq`],
//! [`squared_euclidean_many`]) dispatch through [`crate::kernels`]: the best
//! SIMD implementation the CPU supports (AVX2+FMA or NEON), resolved once
//! per process, with the original scalar loops as the fallback and parity
//! oracle. Set `PPANN_FORCE_SCALAR=1` to pin the scalar path.

use crate::kernels;

/// Inner product `a · b`.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    (kernels::active().dot)(a, b)
}

/// Squared Euclidean distance `‖a − b‖²` — the `dist(p, q)` of the paper.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_euclidean: dimension mismatch");
    (kernels::active().squared_euclidean)(a, b)
}

/// Squared L2 norm `‖a‖²`.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    (kernels::active().norm_sq)(a)
}

/// Batched squared Euclidean distances: `out[i] = ‖query − rows[i]‖²`.
///
/// One call scores a query against a whole candidate list, keeping the query
/// resident in registers across candidates. Per-row results are bit-identical
/// to calling [`squared_euclidean`] on each row.
///
/// # Panics
/// Panics if `out.len() != rows.len()` or (in debug builds) if any row's
/// length differs from the query's.
#[inline]
pub fn squared_euclidean_many(query: &[f64], rows: &[&[f64]], out: &mut [f64]) {
    assert_eq!(rows.len(), out.len(), "squared_euclidean_many: out length mismatch");
    (kernels::active().squared_euclidean_many)(query, rows, out)
}

/// L2 norm `‖a‖`.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    norm_sq(a).sqrt()
}

/// Element-wise sum `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a − b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise (Hadamard) product `a ◦ b` (paper Section IV-A).
pub fn hadamard(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "hadamard: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Element-wise division `a / b` (paper Section IV-A).
///
/// # Panics
/// Panics if any divisor is exactly zero; key generation guarantees the
/// `kv` vectors are bounded away from zero.
pub fn hadamard_div(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "hadamard_div: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            assert!(*y != 0.0, "hadamard_div: division by zero");
            x / y
        })
        .collect()
}

/// In-place scaling `a ← c·a`.
pub fn scale_in_place(a: &mut [f64], c: f64) {
    for x in a.iter_mut() {
        *x *= c;
    }
}

/// Returns `c·a` as a new vector.
pub fn scaled(a: &[f64], c: f64) -> Vec<f64> {
    a.iter().map(|x| x * c).collect()
}

/// `y ← y + c·x` (AXPY).
pub fn axpy(y: &mut [f64], c: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += c * xi;
    }
}

/// Adds the scalar `c` to every element, returning a new vector.
pub fn add_scalar(a: &[f64], c: f64) -> Vec<f64> {
    a.iter().map(|x| x + c).collect()
}

/// Largest absolute coordinate (the `M` of the DCPE β-range).
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Maximum absolute element-wise difference between two vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: dimension mismatch");
    a.iter().zip(b).fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..13).map(|i| (13 - i) as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn squared_euclidean_basic() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(squared_euclidean(&a, &b), 9.0 + 16.0);
    }

    #[test]
    fn squared_euclidean_is_symmetric_and_zero_on_self() {
        let a = [0.25, -1.5, 2.0, 7.5, -3.25];
        let b = [1.0, 0.0, -2.0, 3.0, 4.0];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
        assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn hadamard_identity_pair() {
        // (a+1)◦(b+1) − (a−1)◦(b−1) = 2a + 2b   (paper Equation 6)
        let a = [0.5, -2.0, 3.25, 4.0];
        let b = [1.5, 0.25, -1.0, 2.0];
        let ones = [1.0; 4];
        let lhs = sub(
            &hadamard(&add(&a, &ones), &add(&b, &ones)),
            &hadamard(&sub(&a, &ones), &sub(&b, &ones)),
        );
        let rhs = add(&scaled(&a, 2.0), &scaled(&b, 2.0));
        assert!(max_abs_diff(&lhs, &rhs) < 1e-12);
    }

    #[test]
    fn hadamard_div_quotient_rule() {
        // (a◦b)/(c◦d) = (a/c)◦(b/d)   (paper Equation 7)
        let a = [2.0, 3.0, -4.0];
        let b = [5.0, -6.0, 7.0];
        let c = [1.0, 2.0, 4.0];
        let d = [2.0, 3.0, -7.0];
        let lhs = hadamard_div(&hadamard(&a, &b), &hadamard(&c, &d));
        let rhs = hadamard(&hadamard_div(&a, &c), &hadamard_div(&b, &d));
        assert!(max_abs_diff(&lhs, &rhs) < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(&mut y, 2.0, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 4.0, 5.0]);
        scale_in_place(&mut y, 0.5);
        assert_eq!(y, vec![1.5, 2.0, 2.5]);
    }

    #[test]
    fn max_abs_finds_extreme() {
        assert_eq!(max_abs(&[0.5, -7.25, 3.0]), 7.25);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn hadamard_div_rejects_zero() {
        hadamard_div(&[1.0], &[0.0]);
    }
}
