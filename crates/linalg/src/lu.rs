//! LU decomposition with partial pivoting: linear solves and inversion.
//!
//! Key generation for DCE/AME/ASPE requires inverses of random matrices up to
//! ≈2000×2000. Partial-pivoted LU is numerically adequate for random dense
//! matrices (which are well conditioned with overwhelming probability) and is
//! simple enough to verify exhaustively in tests.

use crate::Matrix;

/// Errors produced by the linear-algebra layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically so) and cannot be factored.
    Singular,
    /// Operand dimensions do not agree.
    DimensionMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// An LU factorization `P·A = L·U` of a square matrix.
#[derive(Debug)]
pub struct LuDecomposition {
    lu: Matrix,
    /// Row permutation: solving uses `b[piv[i]]`.
    piv: Vec<usize>,
}

impl LuDecomposition {
    /// Factors `a`, returning an error if a pivot collapses below `1e-12`
    /// relative to the largest element of its column.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch { expected: a.rows(), got: a.cols() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot: pick the largest |value| in this column.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in col + 1..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                piv.swap(col, pivot_row);
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let inv_pivot = 1.0 / lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] * inv_pivot;
                lu[(r, col)] = factor;
                if factor != 0.0 {
                    for j in col + 1..n {
                        let sub = factor * lu[(col, j)];
                        lu[(r, j)] -= sub;
                    }
                }
            }
        }
        Ok(Self { lu, piv })
    }

    /// Solves `A·x = b`.
    #[allow(clippy::needless_range_loop)] // i/j index two buffers in lockstep
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch { expected: n, got: b.len() });
        }
        // Forward substitution with the permuted right-hand side.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.piv[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A⁻¹` column by column.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for (row, v) in x.into_iter().enumerate() {
                inv[(row, col)] = v;
            }
            e[col] = 0.0;
        }
        Ok(inv)
    }
}

/// Convenience: invert a square matrix in one call.
pub fn invert(a: &Matrix) -> Result<Matrix, LinalgError> {
    LuDecomposition::factor(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use rand::Rng;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = LuDecomposition::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let inv = invert(&Matrix::identity(6)).unwrap();
        assert!(inv.max_abs_diff(&Matrix::identity(6)) < 1e-14);
    }

    #[test]
    fn random_inverse_roundtrip() {
        let mut rng = seeded_rng(42);
        for n in [1usize, 2, 3, 8, 33, 64] {
            let mut m = Matrix::zeros(n, n);
            m.fill_with(|| rng.gen_range(-1.0..1.0));
            let inv = invert(&m).expect("random matrix should be invertible");
            let prod = m.matmul(&inv);
            assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-8, "residual too large for n={n}");
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(LuDecomposition::factor(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(LuDecomposition::factor(&a), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
