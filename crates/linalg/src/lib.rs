//! # ppann-linalg
//!
//! Dense linear-algebra substrate for the PP-ANNS stack.
//!
//! Every encryption scheme in the reproduced paper (DCE, DCPE/SAP, ASPE, AME)
//! is built from a small set of real-valued primitives: dense vectors,
//! row-major matrices, matrix inversion, random permutations and seeded
//! random sampling. This crate implements all of them from scratch with no
//! dependencies beyond `rand`, plus a scoped-thread parallel map used by the
//! one-off bulk jobs (database encryption, ground-truth computation) that
//! must never be confused with the single-threaded search-path timings.
//!
//! ## Example
//!
//! ```
//! use ppann_linalg::{Matrix, random_invertible, seeded_rng};
//!
//! let mut rng = seeded_rng(7);
//! let (m, m_inv) = random_invertible(8, &mut rng);
//! let prod = m.matmul(&m_inv);
//! assert!(prod.max_abs_diff(&Matrix::identity(8)) < 1e-8);
//! ```

pub mod kernels;
mod lu;
mod matrix;
mod parallel;
mod permutation;
mod random;
pub mod vector;

pub use lu::{LinalgError, LuDecomposition};
pub use matrix::Matrix;
pub use parallel::{available_threads, parallel_map_indexed};
pub use permutation::Permutation;
pub use random::{
    gaussian, gaussian_vec, random_invertible, random_sign_vec, random_unit_vector, seeded_rng,
    uniform_vec,
};
