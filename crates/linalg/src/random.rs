//! Seeded random sampling helpers.
//!
//! Everything in the reproduction is deterministic given a seed: datasets,
//! keys, index construction. `rand 0.8` ships no Gaussian distribution (that
//! lives in `rand_distr`, which is not on the approved dependency list), so
//! the standard normal is implemented here via Box–Muller.

use crate::lu::invert;
use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample (Box–Muller, cosine branch).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // u1 ∈ (0, 1] so the log never sees zero.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A vector of `n` iid standard-normal samples.
pub fn gaussian_vec(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| gaussian(rng)).collect()
}

/// A vector of `n` iid uniform samples on `[lo, hi)`.
pub fn uniform_vec(rng: &mut impl Rng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A uniformly random direction on the unit sphere `S^{n-1}`.
pub fn random_unit_vector(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    loop {
        let v = gaussian_vec(rng, n);
        let norm = crate::vector::norm(&v);
        if norm > 1e-12 {
            return crate::vector::scaled(&v, 1.0 / norm);
        }
    }
}

/// A vector whose entries have magnitude in `[0.5, 2)` and random sign.
///
/// Used for the DCE `kv` masking vectors: bounded away from zero so the
/// element-wise divisions of Equation 12 never blow up.
pub fn random_sign_vec(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let mag = rng.gen_range(0.5..2.0);
            if rng.gen::<bool>() {
                mag
            } else {
                -mag
            }
        })
        .collect()
}

/// Generates a random invertible `n × n` matrix together with its inverse.
///
/// Entries are `U(-1, 1)`; candidates are rejected unless the inversion
/// residual stays below `1e-8` so that downstream secure comparisons remain
/// numerically exact (DESIGN.md §6). The residual is checked with random
/// probe vectors — `‖M·(M⁻¹·b) − b‖∞ / ‖b‖∞` for several `b` — which is
/// O(n²) instead of the O(n³) full `M·M⁻¹` product; key generation for the
/// GIST-scale matrices (≈2000²) would otherwise dominate setup. Random
/// dense matrices are well conditioned with overwhelming probability, so
/// rejection is rare.
pub fn random_invertible(n: usize, rng: &mut impl Rng) -> (Matrix, Matrix) {
    assert!(n > 0, "random_invertible: empty matrix");
    'attempt: for _ in 0..16 {
        let mut m = Matrix::zeros(n, n);
        m.fill_with(|| rng.gen_range(-1.0..1.0));
        let Ok(inv) = invert(&m) else { continue };
        for _probe in 0..3 {
            let b = uniform_vec(rng, n, -1.0, 1.0);
            let back = m.matvec(&inv.matvec(&b));
            let scale = crate::vector::max_abs(&b).max(1e-12);
            if crate::vector::max_abs_diff(&back, &b) / scale >= 1e-8 {
                continue 'attempt;
            }
        }
        return (m, inv);
    }
    unreachable!("failed to sample a well-conditioned invertible matrix after 16 attempts")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = seeded_rng(3);
        let n = 200_000;
        let xs = gaussian_vec(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let mut rng = seeded_rng(4);
        for n in [1usize, 2, 10, 100] {
            let v = random_unit_vector(&mut rng, n);
            assert!((crate::vector::norm(&v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sign_vec_bounded_away_from_zero() {
        let mut rng = seeded_rng(5);
        let v = random_sign_vec(&mut rng, 1000);
        assert!(v.iter().all(|x| x.abs() >= 0.5 && x.abs() < 2.0));
        // Both signs occur.
        assert!(v.iter().any(|x| *x > 0.0) && v.iter().any(|x| *x < 0.0));
    }

    #[test]
    fn random_invertible_residual() {
        let mut rng = seeded_rng(6);
        for n in [2usize, 16, 80] {
            let (m, inv) = random_invertible(n, &mut rng);
            assert!(m.matmul(&inv).max_abs_diff(&Matrix::identity(n)) < 1e-8);
        }
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = gaussian_vec(&mut seeded_rng(9), 16);
        let b = gaussian_vec(&mut seeded_rng(9), 16);
        assert_eq!(a, b);
    }
}
