//! Runtime-dispatched SIMD distance kernels.
//!
//! Every query this system answers bottoms out in a handful of inner loops:
//! the plaintext `dot`/`squared_euclidean` pair driving HNSW, the fused DCE
//! comparison `(o1∘p3 − o2∘p4)·t` driving the refine phase, and the AME
//! bilinear form `aᵀ·W·b`. This module provides one [`Kernels`] table per
//! implementation — the portable scalar loops (the *parity oracle*, retained
//! verbatim from the pre-SIMD code), AVX2+FMA on `x86_64`, NEON on
//! `aarch64` — and resolves which table to use **once** per process via
//! CPUID feature detection into a [`OnceLock`], never per call.
//!
//! ## Batched variants
//!
//! On top of the single-pair kernels, each table carries batched variants
//! ([`Kernels::squared_euclidean_many`], [`Kernels::dce_comp_many`]) that
//! score one query (or one trapdoor) against N candidates in a single call.
//! Batching wins twice: the query stays resident in registers across
//! candidates (row-blocked inner loops share every query load), and the
//! per-call dispatch/reduction overhead is amortized. Batched results are
//! **bit-identical** to N single-pair calls of the same table — the row
//! blocks keep each row's accumulator structure unchanged — which the
//! proptest parity suite pins down.
//!
//! ## Numeric exactness (DESIGN.md §6)
//!
//! SIMD kernels are *not* bit-identical to the scalar oracle: they use wider
//! accumulator fans (and FMA, which rounds once per multiply-add) than the
//! scalar loops, so sums are reassociated. The divergence is bounded by
//! ordinary summation-error analysis — `|simd − scalar| ≤ c·n·ε·Σ|termᵢ|`
//! for a small constant `c` — i.e. a few ULPs of the condition-scaled
//! result. The parity proptests enforce exactly that bound; DESIGN.md §6
//! discusses what it means for Theorem 3 sign decisions near zero. Within
//! one process the dispatch is fixed, so every result remains deterministic
//! and all same-process parity contracts (remote-vs-local bit equality,
//! shard distance profiles) are unaffected.
//!
//! ## Escape hatch
//!
//! Setting `PPANN_FORCE_SCALAR=1` in the environment pins the process to
//! the scalar oracle regardless of what the CPU supports — CI runs the
//! whole test suite both ways.

use std::sync::OnceLock;

/// Signature of the fused DCE comparison kernel: `(o1, o2, p3, p4, t)`,
/// all slices of one length, returning the blinded difference `Z`.
pub type DceCompFn = fn(&[f64], &[f64], &[f64], &[f64], &[f64]) -> f64;

/// Signature of the batched DCE comparison kernel:
/// `(o1, o2, incumbent (p3ᵢ, p4ᵢ) pairs, t, out)`.
pub type DceCompManyFn = fn(&[f64], &[f64], &[(&[f64], &[f64])], &[f64], &mut [f64]);

/// A complete set of distance kernels, resolved once at startup.
///
/// All function pointers share the slice-level calling convention of
/// [`crate::vector`]; dimension agreement is the caller's contract
/// (checked by the public wrappers, `debug_assert`ed here).
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Implementation name as it appears in bench JSON: `"scalar"`,
    /// `"avx2"` or `"neon"`.
    pub name: &'static str,
    /// Inner product `a · b`.
    pub dot: fn(&[f64], &[f64]) -> f64,
    /// Squared Euclidean distance `‖a − b‖²`.
    pub squared_euclidean: fn(&[f64], &[f64]) -> f64,
    /// Squared L2 norm `‖a‖²`.
    pub norm_sq: fn(&[f64]) -> f64,
    /// Batched `‖q − rowᵢ‖²` for every row, written into `out`
    /// (`out.len() == rows.len()`). Bit-identical to N single-pair calls
    /// of [`Self::squared_euclidean`].
    pub squared_euclidean_many: fn(&[f64], &[&[f64]], &mut [f64]),
    /// The fused DCE comparison `(o1∘p3 − o2∘p4)·t` (paper §IV-B):
    /// arguments `(o1, o2, p3, p4, t)`, all of one length.
    pub dce_comp: DceCompFn,
    /// Batched DCE comparison: one challenger `(o1, o2)` and one trapdoor
    /// `t` against N incumbent pairs `(p3ᵢ, p4ᵢ)`, written into `out`.
    /// Bit-identical to N single calls of [`Self::dce_comp`].
    pub dce_comp_many: DceCompManyFn,
    /// The AME bilinear form `aᵀ·W·b` for a row-major `a.len() × cols`
    /// matrix `w` (no `W·b` temporary): arguments `(a, w, cols, b)`.
    pub mat_vec_dot: fn(&[f64], &[f64], usize, &[f64]) -> f64,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("name", &self.name).finish_non_exhaustive()
    }
}

/// The scalar parity oracle (the pre-SIMD loops, verbatim).
static SCALAR: Kernels = Kernels {
    name: "scalar",
    dot: scalar::dot,
    squared_euclidean: scalar::squared_euclidean,
    norm_sq: scalar::norm_sq,
    squared_euclidean_many: scalar::squared_euclidean_many,
    dce_comp: scalar::dce_comp,
    dce_comp_many: scalar::dce_comp_many,
    mat_vec_dot: scalar::mat_vec_dot,
};

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// The table the process dispatches through: the best SIMD implementation
/// the CPU supports, unless `PPANN_FORCE_SCALAR` pins the scalar oracle.
/// Resolved on first call, constant thereafter.
#[inline]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(|| choose(force_scalar_requested()))
}

/// Whether the environment pins the scalar oracle (`PPANN_FORCE_SCALAR`
/// set to anything but `0` or empty).
pub fn force_scalar_requested() -> bool {
    std::env::var_os("PPANN_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Pure selection policy, separated from the [`OnceLock`] so tests can
/// exercise both branches in one process.
fn choose(force_scalar: bool) -> &'static Kernels {
    if force_scalar {
        return &SCALAR;
    }
    simd().unwrap_or(&SCALAR)
}

/// The scalar parity oracle, always available.
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

/// The SIMD table this CPU supports, if any (AVX2+FMA on `x86_64`, NEON on
/// `aarch64`).
pub fn simd() -> Option<&'static Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Some(&avx2::KERNELS);
        }
        None
    }
    #[cfg(target_arch = "aarch64")]
    {
        Some(&neon::KERNELS)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

/// Every table runnable on this host — the scalar oracle plus the SIMD
/// table when detected. Parity tests iterate this.
pub fn all() -> Vec<&'static Kernels> {
    let mut v = vec![scalar()];
    v.extend(simd());
    v
}

/// The scalar parity oracle. The four hot loops are the pre-SIMD
/// implementations moved here verbatim; `squared_euclidean_many` adds a
/// two-row interleave that keeps each row's accumulation order identical
/// to the single-pair loop (so batched == single bitwise).
pub(crate) mod scalar {
    /// Inner product with four independent accumulators (lets LLVM keep the
    /// loop vectorized even though floating point addition is not
    /// associative).
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
        let chunks = a.len() / 4;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..chunks {
            let j = i * 4;
            s0 += a[j] * b[j];
            s1 += a[j + 1] * b[j + 1];
            s2 += a[j + 2] * b[j + 2];
            s3 += a[j + 3] * b[j + 3];
        }
        let mut tail = 0.0;
        for j in chunks * 4..a.len() {
            tail += a[j] * b[j];
        }
        s0 + s1 + s2 + s3 + tail
    }

    /// Squared Euclidean distance, 4-way unrolled like [`dot`].
    pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "squared_euclidean: dimension mismatch");
        let chunks = a.len() / 4;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..chunks {
            let j = i * 4;
            let d0 = a[j] - b[j];
            let d1 = a[j + 1] - b[j + 1];
            let d2 = a[j + 2] - b[j + 2];
            let d3 = a[j + 3] - b[j + 3];
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
        }
        let mut tail = 0.0;
        for j in chunks * 4..a.len() {
            let d = a[j] - b[j];
            tail += d * d;
        }
        s0 + s1 + s2 + s3 + tail
    }

    /// `‖a‖² = a · a`.
    pub fn norm_sq(a: &[f64]) -> f64 {
        dot(a, a)
    }

    /// Batched distances: rows are consumed in pairs so the query slice is
    /// walked once per two candidates. Each row keeps its own `s0..s3`
    /// chains, so per-row results are bit-identical to
    /// [`squared_euclidean`].
    pub fn squared_euclidean_many(q: &[f64], rows: &[&[f64]], out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len(), "squared_euclidean_many: out length mismatch");
        let mut r = 0;
        while r + 1 < rows.len() {
            let (a, b) = (rows[r], rows[r + 1]);
            debug_assert!(a.len() == q.len() && b.len() == q.len());
            let chunks = q.len() / 4;
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            let (mut b0, mut b1, mut b2, mut b3) = (0.0, 0.0, 0.0, 0.0);
            for i in 0..chunks {
                let j = i * 4;
                let (q0, q1, q2, q3) = (q[j], q[j + 1], q[j + 2], q[j + 3]);
                let (da0, da1, da2, da3) = (q0 - a[j], q1 - a[j + 1], q2 - a[j + 2], q3 - a[j + 3]);
                a0 += da0 * da0;
                a1 += da1 * da1;
                a2 += da2 * da2;
                a3 += da3 * da3;
                let (db0, db1, db2, db3) = (q0 - b[j], q1 - b[j + 1], q2 - b[j + 2], q3 - b[j + 3]);
                b0 += db0 * db0;
                b1 += db1 * db1;
                b2 += db2 * db2;
                b3 += db3 * db3;
            }
            let (mut ta, mut tb) = (0.0, 0.0);
            for j in chunks * 4..q.len() {
                let da = q[j] - a[j];
                ta += da * da;
                let db = q[j] - b[j];
                tb += db * db;
            }
            out[r] = a0 + a1 + a2 + a3 + ta;
            out[r + 1] = b0 + b1 + b2 + b3 + tb;
            r += 2;
        }
        if r < rows.len() {
            out[r] = squared_euclidean(q, rows[r]);
        }
    }

    /// The fused DCE pass `(o1∘p3 − o2∘p4)·t`, two-way unrolled (verbatim
    /// from `ppann-dce`'s pre-SIMD `distance_comp`).
    pub fn dce_comp(o1: &[f64], o2: &[f64], p3: &[f64], p4: &[f64], t: &[f64]) -> f64 {
        let n = t.len();
        debug_assert!(o1.len() == n && o2.len() == n && p3.len() == n && p4.len() == n);
        let mut acc0 = 0.0;
        let mut acc1 = 0.0;
        let mut i = 0;
        while i + 1 < n {
            acc0 += (o1[i] * p3[i] - o2[i] * p4[i]) * t[i];
            acc1 += (o1[i + 1] * p3[i + 1] - o2[i + 1] * p4[i + 1]) * t[i + 1];
            i += 2;
        }
        if i < n {
            acc0 += (o1[i] * p3[i] - o2[i] * p4[i]) * t[i];
        }
        acc0 + acc1
    }

    /// Batched DCE comparisons: one `(o1, o2, t)` load against N `(p3, p4)`
    /// pairs. The challenger and trapdoor stay cache-hot across the batch.
    pub fn dce_comp_many(
        o1: &[f64],
        o2: &[f64],
        pairs: &[(&[f64], &[f64])],
        t: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(pairs.len(), out.len(), "dce_comp_many: out length mismatch");
        for (z, &(p3, p4)) in out.iter_mut().zip(pairs) {
            *z = dce_comp(o1, o2, p3, p4, t);
        }
    }

    /// `aᵀ·W·b` without materializing `W·b`: one [`dot`] per matrix row,
    /// accumulated in row order.
    pub fn mat_vec_dot(a: &[f64], w: &[f64], cols: usize, b: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), a.len() * cols, "mat_vec_dot: matrix shape mismatch");
        debug_assert_eq!(b.len(), cols, "mat_vec_dot: dimension mismatch");
        let mut z = 0.0;
        for (i, ai) in a.iter().enumerate() {
            z += ai * dot(&w[i * cols..(i + 1) * cols], b);
        }
        z
    }
}

/// AVX2 + FMA kernels (`x86_64`). Strategy per kernel:
///
/// * `dot`/`squared_euclidean`/`norm_sq`: four 256-bit FMA accumulators
///   (16 f64 lanes in flight) break the add-latency chain that bounds the
///   scalar loop; reduction reassociates, bounded per the module docs.
/// * `squared_euclidean_many`: rows in pairs, each with the same four
///   accumulators as the single-pair kernel (bit-identical per row) while
///   every query load is shared between the two rows.
/// * `dce_comp`: two 256-bit accumulators over the fused
///   `fnmadd(o2, p4, o1·p3)·t` pass.
/// * `mat_vec_dot`: scalar row loop over the SIMD `dot`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    pub(super) static KERNELS: super::Kernels = super::Kernels {
        name: "avx2",
        dot,
        squared_euclidean,
        norm_sq,
        squared_euclidean_many,
        dce_comp,
        dce_comp_many,
        mat_vec_dot,
    };

    // Safe entry points: `KERNELS` is only ever selected after runtime
    // detection of AVX2 and FMA (see `super::simd`), so the target-feature
    // contract of the inner functions holds whenever these are reachable
    // through the dispatch table.

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
        // SAFETY: table selected only when AVX2+FMA are detected.
        unsafe { dot_impl(a, b) }
    }

    fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "squared_euclidean: dimension mismatch");
        // SAFETY: table selected only when AVX2+FMA are detected.
        unsafe { sqeuc_impl(a, b) }
    }

    fn norm_sq(a: &[f64]) -> f64 {
        // SAFETY: table selected only when AVX2+FMA are detected.
        unsafe { dot_impl(a, a) }
    }

    fn squared_euclidean_many(q: &[f64], rows: &[&[f64]], out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len(), "squared_euclidean_many: out length mismatch");
        // SAFETY: table selected only when AVX2+FMA are detected.
        unsafe { sqeuc_many_impl(q, rows, out) }
    }

    fn dce_comp(o1: &[f64], o2: &[f64], p3: &[f64], p4: &[f64], t: &[f64]) -> f64 {
        let n = t.len();
        debug_assert!(o1.len() == n && o2.len() == n && p3.len() == n && p4.len() == n);
        // SAFETY: table selected only when AVX2+FMA are detected.
        unsafe { dce_comp_impl(o1, o2, p3, p4, t) }
    }

    fn dce_comp_many(
        o1: &[f64],
        o2: &[f64],
        pairs: &[(&[f64], &[f64])],
        t: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(pairs.len(), out.len(), "dce_comp_many: out length mismatch");
        // SAFETY: table selected only when AVX2+FMA are detected.
        unsafe { dce_comp_many_impl(o1, o2, pairs, t, out) }
    }

    fn mat_vec_dot(a: &[f64], w: &[f64], cols: usize, b: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), a.len() * cols, "mat_vec_dot: matrix shape mismatch");
        debug_assert_eq!(b.len(), cols, "mat_vec_dot: dimension mismatch");
        // SAFETY: table selected only when AVX2+FMA are detected.
        unsafe { mat_vec_dot_impl(a, w, cols, b) }
    }

    /// Reduces four lanes pairwise (`(l0+l1) + (l2+l3)`) — one fixed order
    /// so results are deterministic per process, chosen to match the lane
    /// order [`hsum2`] produces for two vectors at once.
    #[inline(always)]
    unsafe fn hsum(v: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// Reduces two accumulator vectors with shared shuffles:
    /// `((a0+a1) + (a2+a3), (b0+b1) + (b2+b3))` — bit-identical to
    /// [`hsum`] on each input, at roughly the cost of one.
    #[inline(always)]
    unsafe fn hsum2(a: __m256d, b: __m256d) -> (f64, f64) {
        // hadd: [a0+a1, b0+b1, a2+a3, b2+b3]
        let pairs = _mm256_hadd_pd(a, b);
        let hi = _mm256_extractf128_pd(pairs, 1);
        let sums = _mm_add_pd(_mm256_castpd256_pd128(pairs), hi);
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), sums);
        (out[0], out[1])
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_impl(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut j = 0;
        while j + 16 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(j)), _mm256_loadu_pd(pb.add(j)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(pa.add(j + 4)),
                _mm256_loadu_pd(pb.add(j + 4)),
                acc1,
            );
            acc2 = _mm256_fmadd_pd(
                _mm256_loadu_pd(pa.add(j + 8)),
                _mm256_loadu_pd(pb.add(j + 8)),
                acc2,
            );
            acc3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(pa.add(j + 12)),
                _mm256_loadu_pd(pb.add(j + 12)),
                acc3,
            );
            j += 16;
        }
        while j + 4 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(j)), _mm256_loadu_pd(pb.add(j)), acc0);
            j += 4;
        }
        let mut tail = 0.0;
        while j < n {
            tail += a[j] * b[j];
            j += 1;
        }
        hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3))) + tail
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sqeuc_impl(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut j = 0;
        while j + 16 <= n {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(pa.add(j)), _mm256_loadu_pd(pb.add(j)));
            let d1 = _mm256_sub_pd(_mm256_loadu_pd(pa.add(j + 4)), _mm256_loadu_pd(pb.add(j + 4)));
            let d2 = _mm256_sub_pd(_mm256_loadu_pd(pa.add(j + 8)), _mm256_loadu_pd(pb.add(j + 8)));
            let d3 =
                _mm256_sub_pd(_mm256_loadu_pd(pa.add(j + 12)), _mm256_loadu_pd(pb.add(j + 12)));
            acc0 = _mm256_fmadd_pd(d0, d0, acc0);
            acc1 = _mm256_fmadd_pd(d1, d1, acc1);
            acc2 = _mm256_fmadd_pd(d2, d2, acc2);
            acc3 = _mm256_fmadd_pd(d3, d3, acc3);
            j += 16;
        }
        while j + 4 <= n {
            let d = _mm256_sub_pd(_mm256_loadu_pd(pa.add(j)), _mm256_loadu_pd(pb.add(j)));
            acc0 = _mm256_fmadd_pd(d, d, acc0);
            j += 4;
        }
        let mut tail = 0.0;
        while j < n {
            let d = a[j] - b[j];
            tail += d * d;
            j += 1;
        }
        hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3))) + tail
    }

    /// Two rows per pass: every query load feeds both rows' accumulators,
    /// and each row runs the exact accumulator structure of [`sqeuc_impl`]
    /// so per-row results stay bit-identical to the single-pair kernel.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sqeuc_many_impl(q: &[f64], rows: &[&[f64]], out: &mut [f64]) {
        let n = q.len();
        let pq = q.as_ptr();
        let mut r = 0;
        while r + 1 < rows.len() {
            let (a, b) = (rows[r], rows[r + 1]);
            debug_assert!(a.len() == n && b.len() == n);
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            let mut b0 = _mm256_setzero_pd();
            let mut b1 = _mm256_setzero_pd();
            let mut b2 = _mm256_setzero_pd();
            let mut b3 = _mm256_setzero_pd();
            let mut j = 0;
            while j + 16 <= n {
                let q0 = _mm256_loadu_pd(pq.add(j));
                let q1 = _mm256_loadu_pd(pq.add(j + 4));
                let q2 = _mm256_loadu_pd(pq.add(j + 8));
                let q3 = _mm256_loadu_pd(pq.add(j + 12));
                let da0 = _mm256_sub_pd(q0, _mm256_loadu_pd(pa.add(j)));
                let da1 = _mm256_sub_pd(q1, _mm256_loadu_pd(pa.add(j + 4)));
                let da2 = _mm256_sub_pd(q2, _mm256_loadu_pd(pa.add(j + 8)));
                let da3 = _mm256_sub_pd(q3, _mm256_loadu_pd(pa.add(j + 12)));
                a0 = _mm256_fmadd_pd(da0, da0, a0);
                a1 = _mm256_fmadd_pd(da1, da1, a1);
                a2 = _mm256_fmadd_pd(da2, da2, a2);
                a3 = _mm256_fmadd_pd(da3, da3, a3);
                let db0 = _mm256_sub_pd(q0, _mm256_loadu_pd(pb.add(j)));
                let db1 = _mm256_sub_pd(q1, _mm256_loadu_pd(pb.add(j + 4)));
                let db2 = _mm256_sub_pd(q2, _mm256_loadu_pd(pb.add(j + 8)));
                let db3 = _mm256_sub_pd(q3, _mm256_loadu_pd(pb.add(j + 12)));
                b0 = _mm256_fmadd_pd(db0, db0, b0);
                b1 = _mm256_fmadd_pd(db1, db1, b1);
                b2 = _mm256_fmadd_pd(db2, db2, b2);
                b3 = _mm256_fmadd_pd(db3, db3, b3);
                j += 16;
            }
            while j + 4 <= n {
                let qv = _mm256_loadu_pd(pq.add(j));
                let da = _mm256_sub_pd(qv, _mm256_loadu_pd(pa.add(j)));
                a0 = _mm256_fmadd_pd(da, da, a0);
                let db = _mm256_sub_pd(qv, _mm256_loadu_pd(pb.add(j)));
                b0 = _mm256_fmadd_pd(db, db, b0);
                j += 4;
            }
            let (mut ta, mut tb) = (0.0, 0.0);
            while j < n {
                let da = q[j] - a[j];
                ta += da * da;
                let db = q[j] - b[j];
                tb += db * db;
                j += 1;
            }
            let (sa, sb) = hsum2(
                _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)),
                _mm256_add_pd(_mm256_add_pd(b0, b1), _mm256_add_pd(b2, b3)),
            );
            out[r] = sa + ta;
            out[r + 1] = sb + tb;
            r += 2;
        }
        if r < rows.len() {
            out[r] = sqeuc_impl(q, rows[r]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dce_comp_impl(o1: &[f64], o2: &[f64], p3: &[f64], p4: &[f64], t: &[f64]) -> f64 {
        let n = t.len();
        let (po1, po2, pp3, pp4, pt) =
            (o1.as_ptr(), o2.as_ptr(), p3.as_ptr(), p4.as_ptr(), t.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut j = 0;
        while j + 8 <= n {
            // (o1·p3 − o2·p4) with one rounding for the subtraction via FNMADD.
            let m0 = _mm256_fnmadd_pd(
                _mm256_loadu_pd(po2.add(j)),
                _mm256_loadu_pd(pp4.add(j)),
                _mm256_mul_pd(_mm256_loadu_pd(po1.add(j)), _mm256_loadu_pd(pp3.add(j))),
            );
            acc0 = _mm256_fmadd_pd(m0, _mm256_loadu_pd(pt.add(j)), acc0);
            let m1 = _mm256_fnmadd_pd(
                _mm256_loadu_pd(po2.add(j + 4)),
                _mm256_loadu_pd(pp4.add(j + 4)),
                _mm256_mul_pd(_mm256_loadu_pd(po1.add(j + 4)), _mm256_loadu_pd(pp3.add(j + 4))),
            );
            acc1 = _mm256_fmadd_pd(m1, _mm256_loadu_pd(pt.add(j + 4)), acc1);
            j += 8;
        }
        while j + 4 <= n {
            let m = _mm256_fnmadd_pd(
                _mm256_loadu_pd(po2.add(j)),
                _mm256_loadu_pd(pp4.add(j)),
                _mm256_mul_pd(_mm256_loadu_pd(po1.add(j)), _mm256_loadu_pd(pp3.add(j))),
            );
            acc0 = _mm256_fmadd_pd(m, _mm256_loadu_pd(pt.add(j)), acc0);
            j += 4;
        }
        let mut tail = 0.0;
        while j < n {
            tail += (o1[j] * p3[j] - o2[j] * p4[j]) * t[j];
            j += 1;
        }
        hsum(_mm256_add_pd(acc0, acc1)) + tail
    }

    /// The challenger components and trapdoor stay register/cache resident
    /// while the incumbent pairs stream through.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dce_comp_many_impl(
        o1: &[f64],
        o2: &[f64],
        pairs: &[(&[f64], &[f64])],
        t: &[f64],
        out: &mut [f64],
    ) {
        for (z, &(p3, p4)) in out.iter_mut().zip(pairs) {
            *z = dce_comp_impl(o1, o2, p3, p4, t);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn mat_vec_dot_impl(a: &[f64], w: &[f64], cols: usize, b: &[f64]) -> f64 {
        let mut z = 0.0;
        for (i, ai) in a.iter().enumerate() {
            z += ai * dot_impl(&w[i * cols..(i + 1) * cols], b);
        }
        z
    }
}

/// NEON kernels (`aarch64`, where NEON is a baseline feature). Mirrors the
/// AVX2 strategy at 128-bit width: four `float64x2_t` accumulators for the
/// reductions, row pairs for the batched kernel, fused multiply-adds
/// throughout. Same reassociation policy as AVX2 (module docs).
#[cfg(target_arch = "aarch64")]
mod neon {
    use core::arch::aarch64::*;

    pub(super) static KERNELS: super::Kernels = super::Kernels {
        name: "neon",
        dot: dot,
        squared_euclidean: squared_euclidean,
        norm_sq: norm_sq,
        squared_euclidean_many: squared_euclidean_many,
        dce_comp: dce_comp,
        dce_comp_many: dce_comp_many,
        mat_vec_dot: mat_vec_dot,
    };

    #[inline(always)]
    fn hsum4(a0: float64x2_t, a1: float64x2_t, a2: float64x2_t, a3: float64x2_t) -> f64 {
        // SAFETY: NEON is a baseline feature of aarch64.
        unsafe { vaddvq_f64(vaddq_f64(vaddq_f64(a0, a1), vaddq_f64(a2, a3))) }
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        // SAFETY: in-bounds unaligned loads; NEON is baseline on aarch64.
        unsafe {
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let mut acc2 = vdupq_n_f64(0.0);
            let mut acc3 = vdupq_n_f64(0.0);
            let mut j = 0;
            while j + 8 <= n {
                acc0 = vfmaq_f64(acc0, vld1q_f64(pa.add(j)), vld1q_f64(pb.add(j)));
                acc1 = vfmaq_f64(acc1, vld1q_f64(pa.add(j + 2)), vld1q_f64(pb.add(j + 2)));
                acc2 = vfmaq_f64(acc2, vld1q_f64(pa.add(j + 4)), vld1q_f64(pb.add(j + 4)));
                acc3 = vfmaq_f64(acc3, vld1q_f64(pa.add(j + 6)), vld1q_f64(pb.add(j + 6)));
                j += 8;
            }
            while j + 2 <= n {
                acc0 = vfmaq_f64(acc0, vld1q_f64(pa.add(j)), vld1q_f64(pb.add(j)));
                j += 2;
            }
            let mut tail = 0.0;
            while j < n {
                tail += a[j] * b[j];
                j += 1;
            }
            hsum4(acc0, acc1, acc2, acc3) + tail
        }
    }

    fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "squared_euclidean: dimension mismatch");
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        // SAFETY: in-bounds unaligned loads; NEON is baseline on aarch64.
        unsafe {
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let mut acc2 = vdupq_n_f64(0.0);
            let mut acc3 = vdupq_n_f64(0.0);
            let mut j = 0;
            while j + 8 <= n {
                let d0 = vsubq_f64(vld1q_f64(pa.add(j)), vld1q_f64(pb.add(j)));
                let d1 = vsubq_f64(vld1q_f64(pa.add(j + 2)), vld1q_f64(pb.add(j + 2)));
                let d2 = vsubq_f64(vld1q_f64(pa.add(j + 4)), vld1q_f64(pb.add(j + 4)));
                let d3 = vsubq_f64(vld1q_f64(pa.add(j + 6)), vld1q_f64(pb.add(j + 6)));
                acc0 = vfmaq_f64(acc0, d0, d0);
                acc1 = vfmaq_f64(acc1, d1, d1);
                acc2 = vfmaq_f64(acc2, d2, d2);
                acc3 = vfmaq_f64(acc3, d3, d3);
                j += 8;
            }
            while j + 2 <= n {
                let d = vsubq_f64(vld1q_f64(pa.add(j)), vld1q_f64(pb.add(j)));
                acc0 = vfmaq_f64(acc0, d, d);
                j += 2;
            }
            let mut tail = 0.0;
            while j < n {
                let d = a[j] - b[j];
                tail += d * d;
                j += 1;
            }
            hsum4(acc0, acc1, acc2, acc3) + tail
        }
    }

    fn norm_sq(a: &[f64]) -> f64 {
        dot(a, a)
    }

    fn squared_euclidean_many(q: &[f64], rows: &[&[f64]], out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len(), "squared_euclidean_many: out length mismatch");
        let mut r = 0;
        while r + 1 < rows.len() {
            let n = q.len();
            let (a, b) = (rows[r], rows[r + 1]);
            debug_assert!(a.len() == n && b.len() == n);
            let (pq, pa, pb) = (q.as_ptr(), a.as_ptr(), b.as_ptr());
            // SAFETY: in-bounds unaligned loads; NEON is baseline on aarch64.
            unsafe {
                let mut a0 = vdupq_n_f64(0.0);
                let mut a1 = vdupq_n_f64(0.0);
                let mut a2 = vdupq_n_f64(0.0);
                let mut a3 = vdupq_n_f64(0.0);
                let mut b0 = vdupq_n_f64(0.0);
                let mut b1 = vdupq_n_f64(0.0);
                let mut b2 = vdupq_n_f64(0.0);
                let mut b3 = vdupq_n_f64(0.0);
                let mut j = 0;
                while j + 8 <= n {
                    let q0 = vld1q_f64(pq.add(j));
                    let q1 = vld1q_f64(pq.add(j + 2));
                    let q2 = vld1q_f64(pq.add(j + 4));
                    let q3 = vld1q_f64(pq.add(j + 6));
                    let da0 = vsubq_f64(q0, vld1q_f64(pa.add(j)));
                    let da1 = vsubq_f64(q1, vld1q_f64(pa.add(j + 2)));
                    let da2 = vsubq_f64(q2, vld1q_f64(pa.add(j + 4)));
                    let da3 = vsubq_f64(q3, vld1q_f64(pa.add(j + 6)));
                    a0 = vfmaq_f64(a0, da0, da0);
                    a1 = vfmaq_f64(a1, da1, da1);
                    a2 = vfmaq_f64(a2, da2, da2);
                    a3 = vfmaq_f64(a3, da3, da3);
                    let db0 = vsubq_f64(q0, vld1q_f64(pb.add(j)));
                    let db1 = vsubq_f64(q1, vld1q_f64(pb.add(j + 2)));
                    let db2 = vsubq_f64(q2, vld1q_f64(pb.add(j + 4)));
                    let db3 = vsubq_f64(q3, vld1q_f64(pb.add(j + 6)));
                    b0 = vfmaq_f64(b0, db0, db0);
                    b1 = vfmaq_f64(b1, db1, db1);
                    b2 = vfmaq_f64(b2, db2, db2);
                    b3 = vfmaq_f64(b3, db3, db3);
                    j += 8;
                }
                while j + 2 <= n {
                    let qv = vld1q_f64(pq.add(j));
                    let da = vsubq_f64(qv, vld1q_f64(pa.add(j)));
                    a0 = vfmaq_f64(a0, da, da);
                    let db = vsubq_f64(qv, vld1q_f64(pb.add(j)));
                    b0 = vfmaq_f64(b0, db, db);
                    j += 2;
                }
                let (mut ta, mut tb) = (0.0, 0.0);
                while j < n {
                    let da = q[j] - a[j];
                    ta += da * da;
                    let db = q[j] - b[j];
                    tb += db * db;
                    j += 1;
                }
                out[r] = hsum4(a0, a1, a2, a3) + ta;
                out[r + 1] = hsum4(b0, b1, b2, b3) + tb;
            }
            r += 2;
        }
        if r < rows.len() {
            out[r] = squared_euclidean(q, rows[r]);
        }
    }

    fn dce_comp(o1: &[f64], o2: &[f64], p3: &[f64], p4: &[f64], t: &[f64]) -> f64 {
        let n = t.len();
        debug_assert!(o1.len() == n && o2.len() == n && p3.len() == n && p4.len() == n);
        let (po1, po2, pp3, pp4, pt) =
            (o1.as_ptr(), o2.as_ptr(), p3.as_ptr(), p4.as_ptr(), t.as_ptr());
        // SAFETY: in-bounds unaligned loads; NEON is baseline on aarch64.
        unsafe {
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let mut j = 0;
            while j + 4 <= n {
                let m0 = vfmsq_f64(
                    vmulq_f64(vld1q_f64(po1.add(j)), vld1q_f64(pp3.add(j))),
                    vld1q_f64(po2.add(j)),
                    vld1q_f64(pp4.add(j)),
                );
                acc0 = vfmaq_f64(acc0, m0, vld1q_f64(pt.add(j)));
                let m1 = vfmsq_f64(
                    vmulq_f64(vld1q_f64(po1.add(j + 2)), vld1q_f64(pp3.add(j + 2))),
                    vld1q_f64(po2.add(j + 2)),
                    vld1q_f64(pp4.add(j + 2)),
                );
                acc1 = vfmaq_f64(acc1, m1, vld1q_f64(pt.add(j + 2)));
                j += 4;
            }
            let mut tail = 0.0;
            while j < n {
                tail += (o1[j] * p3[j] - o2[j] * p4[j]) * t[j];
                j += 1;
            }
            vaddvq_f64(vaddq_f64(acc0, acc1)) + tail
        }
    }

    fn dce_comp_many(
        o1: &[f64],
        o2: &[f64],
        pairs: &[(&[f64], &[f64])],
        t: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(pairs.len(), out.len(), "dce_comp_many: out length mismatch");
        for (z, &(p3, p4)) in out.iter_mut().zip(pairs) {
            *z = dce_comp(o1, o2, p3, p4, t);
        }
    }

    fn mat_vec_dot(a: &[f64], w: &[f64], cols: usize, b: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), a.len() * cols, "mat_vec_dot: matrix shape mismatch");
        debug_assert_eq!(b.len(), cols, "mat_vec_dot: dimension mismatch");
        let mut z = 0.0;
        for (i, ai) in a.iter().enumerate() {
            z += ai * dot(&w[i * cols..(i + 1) * cols], b);
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_pins_the_oracle() {
        assert_eq!(choose(true).name, "scalar");
    }

    #[test]
    fn default_choice_prefers_simd_when_available() {
        match simd() {
            Some(k) => assert_eq!(choose(false).name, k.name),
            None => assert_eq!(choose(false).name, "scalar"),
        }
    }

    #[test]
    fn all_starts_with_the_oracle() {
        let tables = all();
        assert_eq!(tables[0].name, "scalar");
        assert!(tables.len() <= 2);
    }

    #[test]
    fn active_is_stable_across_calls() {
        assert!(std::ptr::eq(active(), active()));
    }
}
