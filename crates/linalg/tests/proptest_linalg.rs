//! Property-based tests for the linear-algebra substrate.

use ppann_linalg::{vector, LuDecomposition, Matrix, Permutation};
use proptest::prelude::*;

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dot products are symmetric and bilinear in the first argument.
    #[test]
    fn dot_symmetric_bilinear(n in 1usize..32, seed_a in vec_strategy(32), seed_b in vec_strategy(32), c in -5.0f64..5.0) {
        let a = &seed_a[..n];
        let b = &seed_b[..n];
        prop_assert!((vector::dot(a, b) - vector::dot(b, a)).abs() < 1e-9);
        let scaled = vector::scaled(a, c);
        prop_assert!((vector::dot(&scaled, b) - c * vector::dot(a, b)).abs() < 1e-6);
    }

    /// ‖a−b‖² is nonnegative, zero iff a = b (over exact copies), symmetric.
    #[test]
    fn distance_axioms(n in 1usize..32, seed_a in vec_strategy(32), seed_b in vec_strategy(32)) {
        let a = &seed_a[..n];
        let b = &seed_b[..n];
        let d = vector::squared_euclidean(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - vector::squared_euclidean(b, a)).abs() < 1e-9);
        prop_assert_eq!(vector::squared_euclidean(a, a), 0.0);
    }

    /// The paper's Equation 6 Hadamard identity holds for arbitrary inputs.
    #[test]
    fn hadamard_identity(n in 1usize..24, seed_a in vec_strategy(24), seed_b in vec_strategy(24)) {
        let a = &seed_a[..n];
        let b = &seed_b[..n];
        let ones = vec![1.0; n];
        let lhs = vector::sub(
            &vector::hadamard(&vector::add(a, &ones), &vector::add(b, &ones)),
            &vector::hadamard(&vector::sub(a, &ones), &vector::sub(b, &ones)),
        );
        let rhs = vector::add(&vector::scaled(a, 2.0), &vector::scaled(b, 2.0));
        prop_assert!(vector::max_abs_diff(&lhs, &rhs) < 1e-9);
    }

    /// LU solves reproduce the right-hand side.
    #[test]
    fn lu_solve_residual(n in 1usize..12, entries in proptest::collection::vec(-1.0f64..1.0, 144), b in vec_strategy(12)) {
        let m = Matrix::from_vec(n, n, entries[..n * n].to_vec());
        if let Ok(lu) = LuDecomposition::factor(&m) {
            let x = lu.solve(&b[..n]).unwrap();
            let back = m.matvec(&x);
            for (lhs, rhs) in back.iter().zip(&b[..n]) {
                prop_assert!((lhs - rhs).abs() < 1e-6, "residual too large");
            }
        }
    }

    /// A permutation applied to both vectors preserves inner products, and
    /// its inverse undoes it.
    #[test]
    fn permutation_properties(n in 1usize..48, seed in 0u64..1000, data in vec_strategy(48)) {
        let mut rng = ppann_linalg::seeded_rng(seed);
        let p = Permutation::random(n, &mut rng);
        let v = &data[..n];
        prop_assert_eq!(p.inverse().apply(&p.apply(v)), v.to_vec());
        let w: Vec<f64> = v.iter().map(|x| x + 1.0).collect();
        prop_assert!((vector::dot(&p.apply(v), &p.apply(&w)) - vector::dot(v, &w)).abs() < 1e-9);
    }
}
