//! Parity suite for the runtime-dispatched distance kernels.
//!
//! Three contracts, each checked on every kernel table the host can run
//! (the scalar oracle always; AVX2/NEON when detected):
//!
//! 1. **SIMD-vs-scalar parity.** SIMD kernels reassociate sums (wider
//!    accumulator fans + FMA), so they are not bit-identical to the oracle;
//!    DESIGN.md §6 bounds the divergence by condition-scaled summation
//!    error. The tolerances here are that bound: relative to `Σ|termᵢ|`,
//!    never to the (possibly cancelled) result for sign-indefinite sums.
//! 2. **Batched = N singles, bitwise.** Batched kernels keep each row's
//!    accumulation order identical to the same table's single-pair kernel,
//!    so equality is exact, not approximate.
//! 3. **Dispatch policy.** Scalar, SIMD and batched paths are exercised
//!    explicitly regardless of what `active()` resolved to; hosts without
//!    a SIMD table skip that half with a note instead of passing silently.

use ppann_linalg::kernels::{self, Kernels};
use proptest::prelude::*;

/// Dimension edge cases: empty, one, odd, around vector-width multiples,
/// around 4k, and large-enough-to-stream. Proptest picks among these.
const DIMS: [usize; 14] = [0, 1, 2, 3, 5, 7, 8, 15, 16, 17, 63, 4095, 4097, 10_000];

fn fill(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    use rand::Rng;
    let mut rng = ppann_linalg::seeded_rng(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `|simd − scalar| ≤ tol`, with `tol` scaled by the magnitude sum of the
/// contributing terms (the DESIGN.md §6 reassociation bound).
fn assert_close(simd: f64, scalar: f64, term_magnitude_sum: f64, what: &str) {
    let tol = 1e-12 * term_magnitude_sum.max(1.0);
    assert!(
        (simd - scalar).abs() <= tol,
        "{what}: simd={simd} scalar={scalar} diff={} tol={tol}",
        (simd - scalar).abs()
    );
}

fn check_parity(k: &'static Kernels, n: usize, seed: u64) {
    let scalar = kernels::scalar();
    let a = fill(seed, n, -10.0, 10.0);
    let b = fill(seed ^ 0xb, n, -10.0, 10.0);

    let dot_terms: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
    assert_close((k.dot)(&a, &b), (scalar.dot)(&a, &b), dot_terms, &format!("dot n={n}"));
    let norm_terms: f64 = a.iter().map(|x| x * x).sum();
    assert_close((k.norm_sq)(&a), (scalar.norm_sq)(&a), norm_terms, &format!("norm_sq n={n}"));
    // Squared distance is a sum of nonnegative terms: the scalar result is
    // itself the term-magnitude sum.
    let sq_scalar = (scalar.squared_euclidean)(&a, &b);
    assert_close((k.squared_euclidean)(&a, &b), sq_scalar, sq_scalar, &format!("sqeuc n={n}"));

    let o1 = fill(seed ^ 0x1, n, -2.0, 2.0);
    let o2 = fill(seed ^ 0x2, n, -2.0, 2.0);
    let p3 = fill(seed ^ 0x3, n, -2.0, 2.0);
    let p4 = fill(seed ^ 0x4, n, -2.0, 2.0);
    let t = fill(seed ^ 0x5, n, 0.1, 2.0);
    let dce_terms: f64 =
        (0..n).map(|i| ((o1[i] * p3[i]).abs() + (o2[i] * p4[i]).abs()) * t[i].abs()).sum();
    assert_close(
        (k.dce_comp)(&o1, &o2, &p3, &p4, &t),
        (scalar.dce_comp)(&o1, &o2, &p3, &p4, &t),
        dce_terms,
        &format!("dce_comp n={n}"),
    );

    // Bilinear form aᵀ·W·b against a naive double loop.
    let rows = n.min(24);
    let cols = (n / 2).clamp(1, 17);
    let av = fill(seed ^ 0x6, rows, -3.0, 3.0);
    let w = fill(seed ^ 0x7, rows * cols, -3.0, 3.0);
    let bv = fill(seed ^ 0x8, cols, -3.0, 3.0);
    let mut naive = 0.0;
    let mut naive_terms = 0.0;
    for (i, ai) in av.iter().enumerate() {
        for (j, bj) in bv.iter().enumerate() {
            naive += ai * w[i * cols + j] * bj;
            naive_terms += (ai * w[i * cols + j] * bj).abs();
        }
    }
    // Naive is itself reassociated relative to the kernels; same bound.
    assert_close(
        (k.mat_vec_dot)(&av, &w, cols, &bv),
        naive,
        naive_terms,
        &format!("mat_vec_dot {rows}x{cols}"),
    );
}

fn check_batched_bitwise(k: &'static Kernels, n: usize, batch: usize, seed: u64) {
    let q = fill(seed, n, -10.0, 10.0);
    let rows: Vec<Vec<f64>> =
        (0..batch).map(|i| fill(seed ^ (i as u64 + 100), n, -10.0, 10.0)).collect();
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let mut out = vec![0.0; batch];
    (k.squared_euclidean_many)(&q, &refs, &mut out);
    for (row, &got) in refs.iter().zip(&out) {
        let single = (k.squared_euclidean)(&q, row);
        assert_eq!(
            got.to_bits(),
            single.to_bits(),
            "{}: sqeuc batched != single at n={n} batch={batch}",
            k.name
        );
    }

    let o1 = fill(seed ^ 0x11, n, -2.0, 2.0);
    let o2 = fill(seed ^ 0x12, n, -2.0, 2.0);
    let t = fill(seed ^ 0x13, n, 0.1, 2.0);
    let ps: Vec<(Vec<f64>, Vec<f64>)> = (0..batch)
        .map(|i| {
            (
                fill(seed ^ (i as u64 + 200), n, -2.0, 2.0),
                fill(seed ^ (i as u64 + 300), n, -2.0, 2.0),
            )
        })
        .collect();
    let pair_refs: Vec<(&[f64], &[f64])> =
        ps.iter().map(|(p3, p4)| (p3.as_slice(), p4.as_slice())).collect();
    let mut zs = vec![0.0; batch];
    (k.dce_comp_many)(&o1, &o2, &pair_refs, &t, &mut zs);
    for (&(p3, p4), &z) in pair_refs.iter().zip(&zs) {
        let single = (k.dce_comp)(&o1, &o2, p3, p4, &t);
        assert_eq!(
            z.to_bits(),
            single.to_bits(),
            "{}: dce_comp batched != single at n={n} batch={batch}",
            k.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every kernel of every runnable table agrees with the scalar oracle
    /// within the documented reassociation bound, across edge-case dims.
    #[test]
    fn simd_matches_scalar_within_ulp_bound(dim_idx in 0usize..DIMS.len(), seed in 0u64..1_000_000) {
        for k in kernels::all() {
            check_parity(k, DIMS[dim_idx], seed);
        }
    }

    /// Batched kernels equal N single-pair calls bit-for-bit, including
    /// odd batch sizes (the 2-row blocking has a remainder row) and the
    /// empty batch.
    #[test]
    fn batched_equals_singles_bitwise(dim_idx in 0usize..DIMS.len(), batch in 0usize..9, seed in 0u64..1_000_000) {
        for k in kernels::all() {
            check_batched_bitwise(k, DIMS[dim_idx], batch, seed);
        }
    }
}

/// Forced-dispatch coverage: the scalar table, the SIMD table, and both
/// tables' batched paths run regardless of what `active()` resolved to for
/// this process. On hosts without a SIMD table the SIMD half is skipped
/// with an explicit note — a silent pass must not masquerade as coverage.
#[test]
fn forced_dispatch_exercises_scalar_simd_and_batched() {
    let scalar = kernels::scalar();
    assert_eq!(scalar.name, "scalar");
    check_parity(scalar, 129, 7);
    check_batched_bitwise(scalar, 129, 5, 7);

    match kernels::simd() {
        Some(simd) => {
            assert_ne!(simd.name, "scalar");
            check_parity(simd, 129, 7);
            check_batched_bitwise(simd, 129, 5, 7);
        }
        None => {
            eprintln!(
                "note: no SIMD kernel table on this host \
                 ({}); parity checked scalar-only",
                std::env::consts::ARCH
            );
        }
    }

    // `all()` is exactly the set the two branches above covered.
    let names: Vec<&str> = kernels::all().iter().map(|k| k.name).collect();
    assert_eq!(names.len(), 1 + kernels::simd().is_some() as usize);
}

/// The big-dimension sweep (4k±1 and beyond) kept out of proptest so its
/// cost is paid once, not per case.
#[test]
fn parity_at_large_dims() {
    for k in kernels::all() {
        for n in [4095usize, 4096, 4097, 16_384] {
            check_parity(k, n, 42);
            check_batched_bitwise(k, n, 3, 42);
        }
    }
}
