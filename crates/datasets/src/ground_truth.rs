//! Exact k-NN ground truth, computed in parallel (construction-time only —
//! never part of a timed search path).

use ppann_linalg::{parallel_map_indexed, vector};

/// Exact k-nearest-neighbor ids for every query, closest first.
pub fn brute_force_knn(base: &[Vec<f64>], queries: &[Vec<f64>], k: usize) -> Vec<Vec<u32>> {
    parallel_map_indexed(queries.len(), |qi| {
        let q = &queries[qi];
        // Bounded insertion sort into a top-k buffer: O(n·k) worst case but
        // cache-friendly and allocation-free per candidate.
        let mut top: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        for (id, b) in base.iter().enumerate() {
            let d = vector::squared_euclidean(q, b);
            if top.len() < k || d < top.last().expect("nonempty").0 {
                let pos = top.partition_point(|&(dist, _)| dist <= d);
                top.insert(pos, (d, id as u32));
                if top.len() > k {
                    top.pop();
                }
            }
        }
        top.into_iter().map(|(_, id)| id).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_sort() {
        let base: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let queries = vec![vec![42.2], vec![0.0]];
        let truth = brute_force_knn(&base, &queries, 3);
        assert_eq!(truth[0], vec![42, 43, 41]);
        assert_eq!(truth[1], vec![0, 1, 2]);
    }

    #[test]
    fn k_exceeding_n_is_clamped() {
        let base = vec![vec![1.0], vec![2.0]];
        let truth = brute_force_knn(&base, &[vec![0.0]], 5);
        assert_eq!(truth[0], vec![0, 1]);
    }

    #[test]
    fn empty_queries() {
        assert!(brute_force_knn(&[vec![1.0]], &[], 3).is_empty());
    }
}
