//! Seeded synthetic dataset generators.
//!
//! Each generator reproduces the coarse distributional character of its real
//! counterpart — the properties that drive ANN index behaviour (cluster
//! structure, coordinate range, norm distribution) — while staying fully
//! deterministic given a seed.

use crate::catalog::DatasetProfile;
use ppann_linalg::{gaussian, seeded_rng, uniform_vec, vector};
use rand::rngs::StdRng;
use rand::Rng;

/// An in-memory dataset: base vectors plus query vectors.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which profile generated this dataset (None for external data).
    pub profile: Option<DatasetProfile>,
    /// Vector dimensionality.
    pub dim: usize,
    /// Database vectors.
    pub base: Vec<Vec<f64>>,
    /// Query vectors (drawn from the same distribution, held out).
    pub queries: Vec<Vec<f64>>,
}

impl Dataset {
    /// Generates `n` base + `n_queries` query vectors for a profile.
    pub fn generate(profile: DatasetProfile, n: usize, n_queries: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed ^ profile.dim() as u64);
        let gen = |rng: &mut StdRng, count: usize| -> Vec<Vec<f64>> {
            match profile {
                DatasetProfile::SiftLike => sift_like(rng, count),
                DatasetProfile::GistLike => gist_like(rng, count),
                DatasetProfile::GloveLike => glove_like(rng, count),
                DatasetProfile::DeepLike => deep_like(rng, count),
            }
        };
        // Base and queries come from one stream so queries share clusters.
        let mut all = gen(&mut rng, n + n_queries);
        let queries = all.split_off(n);
        Self { profile: Some(profile), dim: profile.dim(), base: all, queries }
    }

    /// Wraps external vectors (e.g. loaded from fvecs files).
    pub fn from_parts(dim: usize, base: Vec<Vec<f64>>, queries: Vec<Vec<f64>>) -> Self {
        assert!(base.iter().chain(&queries).all(|v| v.len() == dim), "ragged vectors");
        Self { profile: None, dim, base, queries }
    }

    /// Largest absolute coordinate over the base vectors (the `M` of the
    /// DCPE β-range).
    pub fn max_abs_coordinate(&self) -> f64 {
        self.base.iter().map(|v| vector::max_abs(v)).fold(0.0, f64::max)
    }
}

/// Shared clustered-Gaussian scaffold: `k` centers, per-cluster sigma.
fn clustered(
    rng: &mut StdRng,
    count: usize,
    dim: usize,
    n_clusters: usize,
    center_lo: f64,
    center_hi: f64,
    sigma: f64,
) -> Vec<Vec<f64>> {
    let centers: Vec<Vec<f64>> =
        (0..n_clusters).map(|_| uniform_vec(rng, dim, center_lo, center_hi)).collect();
    (0..count)
        .map(|_| {
            let c = &centers[rng.gen_range(0..n_clusters)];
            c.iter().map(|x| x + sigma * gaussian(rng)).collect()
        })
        .collect()
}

/// SIFT-like: 128-d, clustered, clamped to [0, 255] and quantized to
/// integers (SIFT descriptors are uint8 histograms).
fn sift_like(rng: &mut StdRng, count: usize) -> Vec<Vec<f64>> {
    clustered(rng, count, 128, 64, 20.0, 180.0, 25.0)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x.clamp(0.0, 255.0).round()).collect())
        .collect()
}

/// GIST-like: 960-d dense floats in [0, 1] with low-variance clusters.
fn gist_like(rng: &mut StdRng, count: usize) -> Vec<Vec<f64>> {
    clustered(rng, count, 960, 32, 0.2, 0.8, 0.08)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x.clamp(0.0, 1.0)).collect())
        .collect()
}

/// GloVe-like: 100-d signed embeddings with heavy-tailed norms (per-vector
/// log-normal scale on top of clustered Gaussians).
fn glove_like(rng: &mut StdRng, count: usize) -> Vec<Vec<f64>> {
    clustered(rng, count, 100, 48, -2.0, 2.0, 0.8)
        .into_iter()
        .map(|v| {
            let scale = (0.4 * gaussian(rng)).exp();
            v.into_iter().map(|x| scale * x).collect()
        })
        .collect()
}

/// Deep-like: 96-d CNN descriptors, L2-normalized to the unit sphere.
fn deep_like(rng: &mut StdRng, count: usize) -> Vec<Vec<f64>> {
    clustered(rng, count, 96, 40, -1.0, 1.0, 0.35)
        .into_iter()
        .map(|mut v| {
            let n = vector::norm(&v).max(1e-12);
            vector::scale_in_place(&mut v, 1.0 / n);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetProfile::DeepLike, 50, 5, 7);
        let b = Dataset::generate(DatasetProfile::DeepLike, 50, 5, 7);
        assert_eq!(a.base, b.base);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn sift_like_is_quantized_nonnegative() {
        let d = Dataset::generate(DatasetProfile::SiftLike, 30, 2, 1);
        for v in &d.base {
            assert_eq!(v.len(), 128);
            assert!(v.iter().all(|x| (0.0..=255.0).contains(x) && x.fract() == 0.0));
        }
    }

    #[test]
    fn gist_like_in_unit_interval() {
        let d = Dataset::generate(DatasetProfile::GistLike, 10, 2, 2);
        assert!(d.base.iter().flatten().all(|x| (0.0..=1.0).contains(x)));
        assert_eq!(d.dim, 960);
    }

    #[test]
    fn deep_like_is_unit_norm() {
        let d = Dataset::generate(DatasetProfile::DeepLike, 20, 2, 3);
        for v in &d.base {
            assert!((vector::norm(v) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn glove_like_norms_are_heavy_tailed() {
        let d = Dataset::generate(DatasetProfile::GloveLike, 400, 2, 4);
        let norms: Vec<f64> = d.base.iter().map(|v| vector::norm(v)).collect();
        let max = norms.iter().cloned().fold(0.0, f64::max);
        let min = norms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "norm spread too tight: {min}..{max}");
    }

    #[test]
    fn queries_share_the_cluster_structure() {
        // A query's nearest base vector should be far closer than a random
        // pair, because queries are drawn from the same clusters.
        let d = Dataset::generate(DatasetProfile::SiftLike, 500, 10, 5);
        let mut rng = seeded_rng(6);
        for q in &d.queries {
            let nearest = d
                .base
                .iter()
                .map(|b| vector::squared_euclidean(q, b))
                .fold(f64::INFINITY, f64::min);
            let random = vector::squared_euclidean(q, &d.base[rng.gen_range(0..d.base.len())]);
            assert!(nearest <= random);
        }
    }
}
