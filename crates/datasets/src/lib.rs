//! # ppann-datasets
//!
//! Evaluation substrate: datasets, ground truth and metrics.
//!
//! The paper evaluates on Sift1M, Gist, Glove and Deep1M (Table I) plus
//! samples of Sift1B/Deep1B. Those corpora are not redistributable inside
//! this repository, so per DESIGN.md §3 this crate generates **seeded
//! synthetic datasets with matching dimensionality and distributional
//! character**, at benchmark-friendly scales. Every experiment in the bench
//! harness measures *relative* behaviour of schemes over the same vectors,
//! which the synthetic workloads preserve; readers holding the real corpora
//! can drop `.fvecs` files in and re-run via [`io`].
//!
//! ```
//! use ppann_datasets::{DatasetProfile, Workload};
//!
//! let ws = Workload::generate(DatasetProfile::SiftLike, 2_000, 50, 7);
//! assert_eq!(ws.dim(), 128);
//! let truth = ws.ground_truth(10);
//! assert_eq!(truth.len(), 50);
//! ```

mod catalog;
mod ground_truth;
pub mod io;
mod metrics;
mod synth;
mod workload;

pub use catalog::DatasetProfile;
pub use ground_truth::brute_force_knn;
pub use metrics::{mean, percentile, recall_at_k, stddev, RecallAccumulator};
pub use synth::Dataset;
pub use workload::Workload;
