//! The four dataset profiles of the paper's Table I.

/// A dataset family mirroring one of the paper's evaluation corpora.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// SIFT descriptors: 128-d, non-negative, quantized, strongly clustered
    /// (paper: Sift1M, 1,000,000 vectors / 10,000 queries).
    SiftLike,
    /// GIST descriptors: 960-d dense floats in [0, 1], mildly clustered
    /// (paper: Gist, 1,000,000 / 1,000).
    GistLike,
    /// GloVe word embeddings: 100-d, signed, heavy-tailed norms
    /// (paper: Glove, 1,183,514 / 10,000).
    GloveLike,
    /// Deep CNN descriptors: 96-d, L2-normalized
    /// (paper: Deep1M, 1,000,000 / 10,000).
    DeepLike,
}

impl DatasetProfile {
    /// All four profiles in the paper's Table I order.
    pub const ALL: [DatasetProfile; 4] = [
        DatasetProfile::SiftLike,
        DatasetProfile::GistLike,
        DatasetProfile::GloveLike,
        DatasetProfile::DeepLike,
    ];

    /// Vector dimensionality — identical to the paper's dataset.
    pub fn dim(&self) -> usize {
        match self {
            DatasetProfile::SiftLike => 128,
            DatasetProfile::GistLike => 960,
            DatasetProfile::GloveLike => 100,
            DatasetProfile::DeepLike => 96,
        }
    }

    /// Display name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::SiftLike => "Sift1M(synth)",
            DatasetProfile::GistLike => "Gist(synth)",
            DatasetProfile::GloveLike => "Glove(synth)",
            DatasetProfile::DeepLike => "Deep1M(synth)",
        }
    }

    /// Cardinality of the paper's original corpus (Table I), for reference
    /// output in `table1`.
    pub fn paper_cardinality(&self) -> (usize, usize) {
        match self {
            DatasetProfile::SiftLike => (1_000_000, 10_000),
            DatasetProfile::GistLike => (1_000_000, 1_000),
            DatasetProfile::GloveLike => (1_183_514, 10_000),
            DatasetProfile::DeepLike => (1_000_000, 10_000),
        }
    }

    /// Default synthetic scale used by the bench harness: high-dimensional
    /// GIST is scaled further down because every scheme's cost is ≥ O(d) and
    /// AME's is O(d²).
    pub fn default_scale(&self) -> (usize, usize) {
        match self {
            DatasetProfile::GistLike => (4_000, 100),
            _ => (20_000, 200),
        }
    }

    /// The β grid examined in Figure 4, translated to normalized coordinates
    /// (`M = 1` after the owner's normalization, so the admissible range of
    /// the paper becomes `[1, 2√d]`; 0 disables the noise). The largest
    /// entry is calibrated — via `cargo run -p ppann-bench --bin
    /// calibrate_beta` — so the filter-only recall ceiling lands at ≈ 0.5,
    /// the paper's §VII-A selection criterion.
    pub fn beta_grid(&self) -> [f64; 4] {
        match self {
            DatasetProfile::SiftLike => [0.0, 0.75, 1.5, 3.0],
            DatasetProfile::GistLike => [0.0, 2.0, 4.0, 8.0],
            DatasetProfile::GloveLike => [0.0, 0.4, 0.8, 1.5],
            DatasetProfile::DeepLike => [0.0, 0.7, 1.4, 2.75],
        }
    }

    /// The single β the end-to-end experiments use: the calibrated value
    /// whose filter-only recall ceiling is ≈ 0.5 ("the attacker's
    /// probability of guessing the true neighbor correctly is only 50%").
    pub fn default_beta(&self) -> f64 {
        self.beta_grid()[3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_match_table_1() {
        assert_eq!(DatasetProfile::SiftLike.dim(), 128);
        assert_eq!(DatasetProfile::GistLike.dim(), 960);
        assert_eq!(DatasetProfile::GloveLike.dim(), 100);
        assert_eq!(DatasetProfile::DeepLike.dim(), 96);
    }

    #[test]
    fn paper_cardinalities_match_table_1() {
        assert_eq!(DatasetProfile::GloveLike.paper_cardinality(), (1_183_514, 10_000));
        assert_eq!(DatasetProfile::GistLike.paper_cardinality(), (1_000_000, 1_000));
    }

    #[test]
    fn beta_grids_start_at_zero() {
        for p in DatasetProfile::ALL {
            assert_eq!(p.beta_grid()[0], 0.0);
            assert!(p.default_beta() > 0.0);
        }
    }
}
