//! A ready-to-run workload: dataset + cached ground truth.

use crate::catalog::DatasetProfile;
use crate::ground_truth::brute_force_knn;
use crate::synth::Dataset;

/// A dataset together with lazily computed exact neighbors.
#[derive(Clone, Debug)]
pub struct Workload {
    dataset: Dataset,
}

impl Workload {
    /// Generates a synthetic workload.
    pub fn generate(profile: DatasetProfile, n: usize, n_queries: usize, seed: u64) -> Self {
        Self { dataset: Dataset::generate(profile, n, n_queries, seed) }
    }

    /// Generates at the profile's default benchmark scale.
    pub fn default_scale(profile: DatasetProfile, seed: u64) -> Self {
        let (n, q) = profile.default_scale();
        Self::generate(profile, n, q, seed)
    }

    /// Wraps external data.
    pub fn from_dataset(dataset: Dataset) -> Self {
        Self { dataset }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Base vectors.
    pub fn base(&self) -> &[Vec<f64>] {
        &self.dataset.base
    }

    /// Query vectors.
    pub fn queries(&self) -> &[Vec<f64>] {
        &self.dataset.queries
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dataset.dim
    }

    /// Exact k-NN ids per query (computed in parallel on demand).
    pub fn ground_truth(&self, k: usize) -> Vec<Vec<u32>> {
        brute_force_knn(&self.dataset.base, &self.dataset.queries, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_end_to_end() {
        let w = Workload::generate(DatasetProfile::DeepLike, 100, 5, 11);
        let t = w.ground_truth(3);
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|ids| ids.len() == 3));
    }
}
