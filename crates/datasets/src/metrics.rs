//! Recall and summary statistics (the paper's accuracy metric, §VII).

/// `Recall@k` for a single query: `|truth ∩ result| / |truth|`
/// (the paper's `|N*(q) ∩ N(q)| / k`).
pub fn recall_at_k(truth: &[u32], result: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = truth.iter().filter(|t| result.contains(t)).count();
    hits as f64 / truth.len() as f64
}

/// Accumulates per-query recalls into a mean (the paper averages recalls
/// over the query set).
#[derive(Clone, Debug, Default)]
pub struct RecallAccumulator {
    total: f64,
    count: usize,
}

impl RecallAccumulator {
    /// Records one query's recall.
    pub fn record(&mut self, truth: &[u32], result: &[u32]) {
        self.total += recall_at_k(truth, result);
        self.count += 1;
    }

    /// Mean recall over all recorded queries.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Number of queries recorded.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The `p`-th percentile (0.0–1.0) of a sample, by nearest-rank on a sorted
/// copy. Latency distributions are the intended use (p50/p95/p99 reporting).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_counts_intersection() {
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[2, 4, 9, 11]), 0.5);
        assert_eq!(recall_at_k(&[1], &[1]), 1.0);
        assert_eq!(recall_at_k(&[1], &[2]), 0.0);
        assert_eq!(recall_at_k(&[], &[1]), 1.0);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = RecallAccumulator::default();
        acc.record(&[1, 2], &[1, 2]);
        acc.record(&[1, 2], &[1, 9]);
        assert_eq!(acc.mean(), 0.75);
        assert_eq!(acc.count(), 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }
}
