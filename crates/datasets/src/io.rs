//! `.fvecs` / `.ivecs` readers and writers (the TEXMEX corpus format used by
//! Sift1M/Gist/Deep1M): every vector is a little-endian `i32` dimension
//! followed by `dim` little-endian values (`f32` or `i32`).
//!
//! These exist so that readers holding the real corpora can reproduce the
//! experiments on them: load with [`read_fvecs`], wrap in
//! [`crate::Dataset::from_parts`].

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an entire `.fvecs` file (optionally capping the number of vectors).
pub fn read_fvecs(path: &Path, limit: Option<usize>) -> std::io::Result<Vec<Vec<f64>>> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    let mut dim_buf = [0u8; 4];
    loop {
        if let Some(l) = limit {
            if out.len() >= l {
                break;
            }
        }
        match reader.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let dim = i32::from_le_bytes(dim_buf) as usize;
        let mut payload = vec![0u8; dim * 4];
        reader.read_exact(&mut payload)?;
        out.push(
            payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")) as f64)
                .collect(),
        );
    }
    Ok(out)
}

/// Writes vectors as `.fvecs` (values stored as `f32`).
pub fn write_fvecs(path: &Path, vectors: &[Vec<f64>]) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for v in vectors {
        w.write_all(&(v.len() as i32).to_le_bytes())?;
        for x in v {
            w.write_all(&(*x as f32).to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads an `.ivecs` file (e.g. ground-truth id lists).
pub fn read_ivecs(path: &Path, limit: Option<usize>) -> std::io::Result<Vec<Vec<u32>>> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    let mut dim_buf = [0u8; 4];
    loop {
        if let Some(l) = limit {
            if out.len() >= l {
                break;
            }
        }
        match reader.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let dim = i32::from_le_bytes(dim_buf) as usize;
        let mut payload = vec![0u8; dim * 4];
        reader.read_exact(&mut payload)?;
        out.push(
            payload
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().expect("chunk of 4")) as u32)
                .collect(),
        );
    }
    Ok(out)
}

/// Writes id lists as `.ivecs`.
pub fn write_ivecs(path: &Path, lists: &[Vec<u32>]) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for ids in lists {
        w.write_all(&(ids.len() as i32).to_le_bytes())?;
        for id in ids {
            w.write_all(&(*id as i32).to_le_bytes())?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let path = std::env::temp_dir().join("ppanns_io_test.fvecs");
        let vecs = vec![vec![1.0, 2.5, -3.0], vec![0.0, 4.0, 5.0]];
        write_fvecs(&path, &vecs).unwrap();
        let back = read_fvecs(&path, None).unwrap();
        assert_eq!(back, vecs);
        let capped = read_fvecs(&path, Some(1)).unwrap();
        assert_eq!(capped.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ivecs_roundtrip() {
        let path = std::env::temp_dir().join("ppanns_io_test.ivecs");
        let lists = vec![vec![1, 2, 3], vec![7]];
        write_ivecs(&path, &lists).unwrap();
        assert_eq!(read_ivecs(&path, None).unwrap(), lists);
        std::fs::remove_file(&path).ok();
    }
}
