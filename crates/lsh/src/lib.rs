//! # ppann-lsh
//!
//! E2LSH — locality-sensitive hashing for Euclidean space via p-stable
//! (Gaussian) projections. This is the index substrate of the RS-SANN and
//! PRI-ANN baselines in the reproduced paper's evaluation (Section VII):
//! both systems hash the database into buckets, retrieve candidate buckets
//! for a query, and leave exact refinement to the user.
//!
//! Each of the `l` tables hashes a vector with `k` concatenated functions
//! `h(v) = ⌊(a·v + b) / w⌋` (`a ~ N(0, I)`, `b ~ U[0, w)`); the `k`-tuple is
//! mixed into a 64-bit bucket key. A query probes its bucket in every table
//! and unions the contents.
//!
//! ```
//! use ppann_lsh::{LshIndex, LshParams};
//!
//! let data = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![9.0, 9.0]];
//! let index = LshIndex::build(2, LshParams { k: 4, l: 8, w: 1.0, seed: 3 }, &data);
//! let cands = index.candidates(&[0.05, 0.0]);
//! assert!(cands.contains(&0) && cands.contains(&1));
//! ```

use ppann_linalg::{gaussian_vec, seeded_rng, vector};
use rand::Rng;
use std::collections::HashMap;

/// E2LSH parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshParams {
    /// Concatenated hash functions per table (larger ⇒ more selective).
    pub k: usize,
    /// Number of tables (larger ⇒ higher recall, more candidates).
    pub l: usize,
    /// Quantization width `w` of each hash function.
    pub w: f64,
    /// RNG seed for the projections.
    pub seed: u64,
}

impl LshParams {
    /// Picks `w` from a data sample by calibrating against **nearest
    /// neighbor** distances: with `k` concatenated hashes, near pairs only
    /// collide reliably when `w` is several times the typical NN distance
    /// (per-hash collision probability ≈ `1 − 2Φ(−w/r)` must survive being
    /// raised to the `k`-th power). `w = 4·mean_nn` puts per-hash collision
    /// around 0.9 for true neighbors while staying selective for the bulk of
    /// the data. Falls back to mean pairwise distance for degenerate
    /// samples.
    pub fn tuned(k: usize, l: usize, seed: u64, sample: &[Vec<f64>]) -> Self {
        let mut rng = seeded_rng(seed ^ 0xD1F);
        let m = sample.len().min(256);
        let subset: Vec<&Vec<f64>> = if sample.len() <= m {
            sample.iter().collect()
        } else {
            (0..m).map(|_| &sample[rng.gen_range(0..sample.len())]).collect()
        };
        let mut nn_total = 0.0;
        let mut nn_count = 0usize;
        let mut pair_total = 0.0;
        let mut pair_count = 0usize;
        for (i, a) in subset.iter().enumerate() {
            let mut best = f64::INFINITY;
            for (j, b) in subset.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = vector::squared_euclidean(a, b).sqrt();
                best = best.min(d);
                pair_total += d;
                pair_count += 1;
            }
            if best.is_finite() && best > 0.0 {
                nn_total += best;
                nn_count += 1;
            }
        }
        let w = if nn_count > 0 {
            4.0 * nn_total / nn_count as f64
        } else if pair_count > 0 && pair_total > 0.0 {
            pair_total / pair_count as f64 / 2.0
        } else {
            1.0
        };
        Self { k, l, w: w.max(1e-9), seed }
    }
}

/// One hash table: `k` projections plus the bucket map.
struct Table {
    /// Flattened `k × dim` projection directions.
    projections: Vec<f64>,
    offsets: Vec<f64>,
    buckets: HashMap<u64, Vec<u32>>,
}

/// SplitMix64-style avalanche mix for combining the `k` hash integers.
#[inline]
fn mix(mut h: u64, v: i64) -> u64 {
    h ^= v as u64;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

/// An E2LSH index over `f64` vectors addressed by dense `u32` ids.
pub struct LshIndex {
    dim: usize,
    params: LshParams,
    tables: Vec<Table>,
    len: usize,
}

impl LshIndex {
    /// Creates an empty index.
    pub fn new(dim: usize, params: LshParams) -> Self {
        assert!(dim > 0 && params.k > 0 && params.l > 0 && params.w > 0.0);
        let mut rng = seeded_rng(params.seed);
        let tables = (0..params.l)
            .map(|_| Table {
                projections: gaussian_vec(&mut rng, params.k * dim),
                offsets: (0..params.k).map(|_| rng.gen_range(0.0..params.w)).collect(),
                buckets: HashMap::new(),
            })
            .collect();
        Self { dim, params, tables, len: 0 }
    }

    /// Builds an index over `data` (ids are positions).
    pub fn build(dim: usize, params: LshParams, data: &[Vec<f64>]) -> Self {
        let mut index = Self::new(dim, params);
        for (i, v) in data.iter().enumerate() {
            index.insert(i as u32, v);
        }
        index
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Parameters in use.
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// Number of tables (`l`).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The raw (pre-mix) hash coordinates of `v` in `table`:
    /// `h_j = (a_j·v + b_j) / w` *before* flooring. Exposed so multi-probe
    /// can rank boundary distances.
    fn hash_coords(&self, table: usize, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim, "hash_coords: dimension mismatch");
        let t = &self.tables[table];
        (0..self.params.k)
            .map(|j| {
                let proj = &t.projections[j * self.dim..(j + 1) * self.dim];
                (vector::dot(proj, v) + t.offsets[j]) / self.params.w
            })
            .collect()
    }

    /// Mixes floored hash coordinates into a 64-bit bucket key.
    fn key_of(table: usize, floored: &[i64]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ table as u64;
        for &c in floored {
            h = mix(h, c);
        }
        h
    }

    /// The bucket key of `v` in `table` — users of PRI-ANN compute this
    /// locally (they hold the LSH key material) and then PIR-fetch the bucket.
    pub fn bucket_key(&self, table: usize, v: &[f64]) -> u64 {
        let coords = self.hash_coords(table, v);
        let floored: Vec<i64> = coords.iter().map(|c| c.floor() as i64).collect();
        Self::key_of(table, &floored)
    }

    /// Multi-probe key sequence for `v` in `table`: the home bucket followed
    /// by up to `probes` single-coordinate perturbations, ordered by how
    /// close the query sits to that bucket boundary (Lv et al., VLDB 2007).
    /// Probing neighboring buckets recovers most of the recall that extra
    /// tables would buy, at a fraction of the memory.
    pub fn probe_keys(&self, table: usize, v: &[f64], probes: usize) -> Vec<u64> {
        let coords = self.hash_coords(table, v);
        let floored: Vec<i64> = coords.iter().map(|c| c.floor() as i64).collect();
        let mut keys = vec![Self::key_of(table, &floored)];
        // Rank ±1 perturbations of each coordinate by boundary distance.
        let mut perturbations: Vec<(f64, usize, i64)> = Vec::with_capacity(2 * coords.len());
        for (j, &c) in coords.iter().enumerate() {
            let frac = c - c.floor();
            perturbations.push((frac, j, -1)); // distance to the lower wall
            perturbations.push((1.0 - frac, j, 1)); // distance to the upper wall
        }
        perturbations.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        for &(_, j, delta) in perturbations.iter().take(probes) {
            let mut alt = floored.clone();
            alt[j] += delta;
            keys.push(Self::key_of(table, &alt));
        }
        keys
    }

    /// Union of multi-probe buckets across all tables, deduplicated, in
    /// first-seen order (`probes` extra buckets per table).
    pub fn candidates_multiprobe(&self, query: &[f64], probes: usize) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for table in 0..self.tables.len() {
            for key in self.probe_keys(table, query, probes) {
                for &id in self.bucket(table, key) {
                    if seen.insert(id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Inserts a vector under `id`.
    pub fn insert(&mut self, id: u32, v: &[f64]) {
        for table in 0..self.tables.len() {
            let key = self.bucket_key(table, v);
            self.tables[table].buckets.entry(key).or_default().push(id);
        }
        self.len += 1;
    }

    /// The ids stored in `(table, key)` (empty slice if the bucket is empty).
    pub fn bucket(&self, table: usize, key: u64) -> &[u32] {
        self.tables[table].buckets.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Union of the query's buckets across all tables, deduplicated,
    /// in first-seen order.
    pub fn candidates(&self, query: &[f64]) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for table in 0..self.tables.len() {
            let key = self.bucket_key(table, query);
            for &id in self.bucket(table, key) {
                if seen.insert(id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Iterates `(table, key, ids)` over every non-empty bucket — used to lay
    /// buckets out as PIR blocks.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (usize, u64, &[u32])> {
        self.tables
            .iter()
            .enumerate()
            .flat_map(|(t, table)| table.buckets.iter().map(move |(k, v)| (t, *k, v.as_slice())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::uniform_vec;

    fn params() -> LshParams {
        LshParams { k: 4, l: 8, w: 1.0, seed: 99 }
    }

    #[test]
    fn identical_vectors_always_collide() {
        let v = vec![0.3, -0.7, 1.1];
        let index = LshIndex::build(3, params(), &[v.clone(), v.clone()]);
        let cands = index.candidates(&v);
        assert_eq!(cands, vec![0, 1]);
    }

    #[test]
    fn near_points_collide_more_than_far_points() {
        let mut rng = seeded_rng(7);
        let dim = 8;
        let base: Vec<f64> = uniform_vec(&mut rng, dim, -1.0, 1.0);
        let near: Vec<Vec<f64>> = (0..50)
            .map(|_| base.iter().map(|x| x + rng.gen_range(-0.02..0.02)).collect())
            .collect();
        let far: Vec<Vec<f64>> = (0..50).map(|_| uniform_vec(&mut rng, dim, 5.0, 9.0)).collect();
        let mut data = near.clone();
        data.extend(far.clone());
        let index = LshIndex::build(dim, LshParams::tuned(4, 8, 1, &data), &data);
        let cands = index.candidates(&base);
        let near_hits = cands.iter().filter(|&&i| (i as usize) < 50).count();
        let far_hits = cands.len() - near_hits;
        assert!(near_hits > far_hits, "near {near_hits} vs far {far_hits}");
        assert!(near_hits >= 25, "near recall too low: {near_hits}");
    }

    #[test]
    fn bucket_key_is_deterministic() {
        let index = LshIndex::new(4, params());
        let v = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(index.bucket_key(2, &v), index.bucket_key(2, &v));
        // Different tables hash differently (with overwhelming probability).
        assert_ne!(index.bucket_key(0, &v), index.bucket_key(1, &v));
    }

    #[test]
    fn iter_buckets_covers_all_insertions() {
        let data = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        let index = LshIndex::build(2, params(), &data);
        let total: usize = index.iter_buckets().map(|(_, _, ids)| ids.len()).sum();
        assert_eq!(total, 2 * index.num_tables());
    }

    #[test]
    fn multiprobe_is_superset_of_single_probe() {
        let mut rng = seeded_rng(8);
        let data: Vec<Vec<f64>> = (0..300).map(|_| uniform_vec(&mut rng, 6, -1.0, 1.0)).collect();
        let index = LshIndex::build(6, LshParams::tuned(4, 4, 2, &data), &data);
        let q = &data[0];
        let single = index.candidates(q);
        let multi = index.candidates_multiprobe(q, 4);
        assert!(single.iter().all(|id| multi.contains(id)));
        assert!(multi.len() >= single.len());
    }

    #[test]
    fn probe_keys_start_with_home_bucket_and_are_distinct() {
        let index = LshIndex::new(4, params());
        let v = [0.3, -0.2, 0.9, 0.1];
        let keys = index.probe_keys(1, &v, 5);
        assert_eq!(keys[0], index.bucket_key(1, &v));
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "probe keys must be distinct");
    }

    #[test]
    fn multiprobe_improves_recall_at_fixed_tables() {
        let mut rng = seeded_rng(10);
        let base: Vec<f64> = uniform_vec(&mut rng, 8, -1.0, 1.0);
        let near: Vec<Vec<f64>> = (0..80)
            .map(|_| base.iter().map(|x| x + rng.gen_range(-0.05..0.05)).collect())
            .collect();
        let index = LshIndex::build(8, LshParams::tuned(6, 2, 3, &near), &near);
        // With only 2 tables, probing should find at least as many of the
        // near points as the home buckets alone.
        let plain = index.candidates(&base).len();
        let probed = index.candidates_multiprobe(&base, 6).len();
        assert!(probed >= plain, "probed {probed} < plain {plain}");
    }

    #[test]
    fn tuned_width_is_positive() {
        let data = vec![vec![0.0; 4]; 3];
        let p = LshParams::tuned(4, 4, 1, &data);
        assert!(p.w > 0.0);
    }
}
