//! Property-based tests for the E2LSH substrate.

use ppann_lsh::{LshIndex, LshParams};
use proptest::prelude::*;

fn vecs(n: usize, d: usize, raw: &[f64]) -> Vec<Vec<f64>> {
    (0..n).map(|i| raw[i * d..(i + 1) * d].to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A vector always lands in its own bucket: querying with an indexed
    /// vector must return it among the candidates.
    #[test]
    fn self_collision(
        n in 1usize..40,
        d in 1usize..8,
        raw in proptest::collection::vec(-5.0f64..5.0, 40 * 8),
        seed in any::<u64>(),
    ) {
        let data = vecs(n, d, &raw);
        let params = LshParams { k: 3, l: 4, w: 1.0, seed };
        let index = LshIndex::build(d, params, &data);
        for (i, v) in data.iter().enumerate() {
            let cands = index.candidates(v);
            prop_assert!(cands.contains(&(i as u32)), "vector {i} missing from its own bucket");
        }
    }

    /// Multi-probe candidates are always a superset of single-probe ones,
    /// and probe keys never repeat.
    #[test]
    fn multiprobe_superset(
        n in 1usize..30,
        d in 1usize..6,
        raw in proptest::collection::vec(-3.0f64..3.0, 30 * 6),
        probes in 0usize..8,
        seed in any::<u64>(),
    ) {
        let data = vecs(n, d, &raw);
        let params = LshParams { k: 4, l: 3, w: 0.75, seed };
        let index = LshIndex::build(d, params, &data);
        let q = &data[0];
        let single = index.candidates(q);
        let multi = index.candidates_multiprobe(q, probes);
        prop_assert!(single.iter().all(|id| multi.contains(id)));
        for t in 0..index.num_tables() {
            let keys = index.probe_keys(t, q, probes);
            let mut dedup = keys.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), keys.len());
        }
    }

    /// Tuned parameters are always usable (positive finite width).
    #[test]
    fn tuned_width_always_valid(
        n in 0usize..20,
        d in 1usize..5,
        raw in proptest::collection::vec(-2.0f64..2.0, 20 * 5),
        seed in any::<u64>(),
    ) {
        let data = vecs(n, d, &raw);
        let p = LshParams::tuned(4, 4, seed, &data);
        prop_assert!(p.w.is_finite() && p.w > 0.0);
    }
}
