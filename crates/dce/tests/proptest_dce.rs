//! Property-based tests of DCE: Theorem 3 (exact comparisons) must hold for
//! arbitrary vectors, dimensions (odd and even), keys and randomness.

use ppann_dce::{distance_comp, DceSecretKey};
use ppann_linalg::seeded_rng;
use ppann_linalg::vector::squared_euclidean;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sign agreement on arbitrary triples, any dimension 2..=20.
    #[test]
    fn theorem_3_holds(
        d in 2usize..=20,
        key_seed in 0u64..10_000,
        data in proptest::collection::vec(-1.0f64..1.0, 60),
    ) {
        let mut rng = seeded_rng(key_seed);
        let sk = DceSecretKey::generate(d, &mut rng);
        let o = &data[..d];
        let p = &data[20..20 + d];
        let q = &data[40..40 + d];
        let c_o = sk.encrypt(o, &mut rng);
        let c_p = sk.encrypt(p, &mut rng);
        let t_q = sk.trapdoor(q, &mut rng);
        let z = distance_comp(&c_o, &c_p, &t_q);
        let truth = squared_euclidean(o, q) - squared_euclidean(p, q);
        // Guard band: ties within numerical noise are unconstrained.
        if truth.abs() > 1e-7 {
            prop_assert_eq!(z < 0.0, truth < 0.0, "Z = {}, truth = {}", z, truth);
        }
    }

    /// Comparisons are consistent across re-encryptions: any two fresh
    /// ciphertext pairs of the same plaintexts order identically.
    #[test]
    fn reencryption_stability(
        d in 2usize..=12,
        key_seed in 0u64..1000,
        data in proptest::collection::vec(-1.0f64..1.0, 36),
    ) {
        let mut rng = seeded_rng(key_seed ^ 0xABCD);
        let sk = DceSecretKey::generate(d, &mut rng);
        let o = &data[..d];
        let p = &data[12..12 + d];
        let q = &data[24..24 + d];
        let truth = squared_euclidean(o, q) - squared_euclidean(p, q);
        prop_assume!(truth.abs() > 1e-6);
        let t_q = sk.trapdoor(q, &mut rng);
        let mut signs = Vec::new();
        for _ in 0..4 {
            let z = distance_comp(&sk.encrypt(o, &mut rng), &sk.encrypt(p, &mut rng), &t_q);
            signs.push(z < 0.0);
        }
        prop_assert!(signs.windows(2).all(|w| w[0] == w[1]));
    }

    /// Antisymmetry: swapping o and p flips the sign.
    #[test]
    fn antisymmetry(
        d in 2usize..=12,
        key_seed in 0u64..1000,
        data in proptest::collection::vec(-1.0f64..1.0, 36),
    ) {
        let mut rng = seeded_rng(key_seed ^ 0x1357);
        let sk = DceSecretKey::generate(d, &mut rng);
        let o = &data[..d];
        let p = &data[12..12 + d];
        let q = &data[24..24 + d];
        let truth = squared_euclidean(o, q) - squared_euclidean(p, q);
        prop_assume!(truth.abs() > 1e-6);
        let c_o = sk.encrypt(o, &mut rng);
        let c_p = sk.encrypt(p, &mut rng);
        let t_q = sk.trapdoor(q, &mut rng);
        let forward = distance_comp(&c_o, &c_p, &t_q);
        let backward = distance_comp(&c_p, &c_o, &t_q);
        prop_assert_eq!(forward < 0.0, backward > 0.0);
    }

    /// Ciphertext shapes always match the paper's 8d+64 / 2d+16 analysis.
    #[test]
    fn shapes(d in 1usize..=30, key_seed in 0u64..100) {
        let mut rng = seeded_rng(key_seed);
        let sk = DceSecretKey::generate(d, &mut rng);
        let v = vec![0.5; d];
        let c = sk.encrypt(&v, &mut rng);
        let t = sk.trapdoor(&v, &mut rng);
        let d_even = d + d % 2;
        prop_assert_eq!(c.len_scalars(), 8 * d_even + 64);
        prop_assert_eq!(t.dim(), 2 * d_even + 16);
    }
}
