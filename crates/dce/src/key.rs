//! DCE secret keys (`KeyGen` of Section IV-B).

use crate::randomize::{ciphertext_dim, even_dim, randomized_dim};
use ppann_linalg::{random_invertible, random_sign_vec, vector, Matrix, Permutation};
use rand::Rng;

/// The DCE secret key
/// `SK = {M₁, M₂, M₃, π₁, π₂, r₁…r₄, kv₁…kv₄}`.
///
/// `M₁, M₂ ∈ R^{(d/2+4)²}` and the permutations/randoms `r₁…r₄` drive the
/// vector-randomization phase; `M₃ ∈ R^{(2d+16)²}` (stored pre-split into
/// `M_up`/`M_down` plus its inverse) and the masking vectors `kv₁…kv₄` with
/// `kv₁◦kv₃ = kv₂◦kv₄` drive the vector-transformation phase.
///
/// Inverses of `M₁`, `M₂`, `M₃` are precomputed at generation time so that
/// trapdoor generation is two mat-vecs, not two solves.
pub struct DceSecretKey {
    dim: usize,
    m1: Matrix,
    m1_inv: Matrix,
    m2: Matrix,
    m2_inv: Matrix,
    pi1: Permutation,
    pi2: Permutation,
    r: [f64; 4],
    m_up: Matrix,
    m_down: Matrix,
    m3_inv: Matrix,
    kv: [Vec<f64>; 4],
    /// Precomputed `kv₂ ◦ kv₄` used by every trapdoor.
    kv24: Vec<f64>,
}

impl DceSecretKey {
    /// Generates a fresh key for `dim`-dimensional vectors
    /// (`KeyGen(1^ζ, d)`). The security parameter of the paper is implicit in
    /// the caller's choice of RNG.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn generate(dim: usize, rng: &mut impl Rng) -> Self {
        assert!(dim > 0, "DCE requires a positive dimension");
        let d_even = even_dim(dim);
        let half = d_even / 2 + 4;
        let full = randomized_dim(dim);
        let double = ciphertext_dim(dim);

        let (m1, m1_inv) = random_invertible(half, rng);
        let (m2, m2_inv) = random_invertible(half, rng);
        let (m3, m3_inv) = random_invertible(double, rng);
        let m_up = m3.row_block(0, full);
        let m_down = m3.row_block(full, double);

        let pi1 = Permutation::random(d_even, rng);
        let pi2 = Permutation::random(full, rng);

        // r₁…r₄ are shared across all database and query vectors; they must
        // be nonzero (γ_p divides by r₄), which `random_sign_vec` guarantees.
        let rv = random_sign_vec(rng, 4);
        let r = [rv[0], rv[1], rv[2], rv[3]];

        // kv₁, kv₂, kv₃ free; kv₄ = (kv₁ ◦ kv₃) / kv₂ enforces the masking
        // identity kv₁◦kv₃ = kv₂◦kv₄ of Equation 12.
        let kv1 = random_sign_vec(rng, double);
        let kv2 = random_sign_vec(rng, double);
        let kv3 = random_sign_vec(rng, double);
        let kv4 = vector::hadamard_div(&vector::hadamard(&kv1, &kv3), &kv2);
        let kv24 = vector::hadamard(&kv2, &kv4);

        Self {
            dim,
            m1,
            m1_inv,
            m2,
            m2_inv,
            pi1,
            pi2,
            r,
            m_up,
            m_down,
            m3_inv,
            kv: [kv1, kv2, kv3, kv4],
            kv24,
        }
    }

    /// Original (unpadded) vector dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    pub(crate) fn m1(&self) -> &Matrix {
        &self.m1
    }
    pub(crate) fn m1_inv(&self) -> &Matrix {
        &self.m1_inv
    }
    pub(crate) fn m2(&self) -> &Matrix {
        &self.m2
    }
    pub(crate) fn m2_inv(&self) -> &Matrix {
        &self.m2_inv
    }
    pub(crate) fn pi1(&self) -> &Permutation {
        &self.pi1
    }
    pub(crate) fn pi2(&self) -> &Permutation {
        &self.pi2
    }
    pub(crate) fn r(&self) -> &[f64; 4] {
        &self.r
    }
    pub(crate) fn m_up(&self) -> &Matrix {
        &self.m_up
    }
    pub(crate) fn m_down(&self) -> &Matrix {
        &self.m_down
    }
    pub(crate) fn m3_inv(&self) -> &Matrix {
        &self.m3_inv
    }
    pub(crate) fn kv(&self, i: usize) -> &[f64] {
        &self.kv[i]
    }
    pub(crate) fn kv24(&self) -> &[f64] {
        &self.kv24
    }

    /// Borrowed view of the raw key material (serialization only).
    pub(crate) fn raw_parts(&self) -> RawKeyParts<'_> {
        RawKeyParts {
            dim: self.dim,
            m1: &self.m1,
            m1_inv: &self.m1_inv,
            m2: &self.m2,
            m2_inv: &self.m2_inv,
            pi1: &self.pi1,
            pi2: &self.pi2,
            r: &self.r,
            m_up: &self.m_up,
            m_down: &self.m_down,
            m3_inv: &self.m3_inv,
            kv: [&self.kv[0], &self.kv[1], &self.kv[2], &self.kv[3]],
        }
    }

    /// Reassembles a key from raw material (deserialization only). Returns
    /// `None` when the shapes are mutually inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        dim: usize,
        m1: Matrix,
        m1_inv: Matrix,
        m2: Matrix,
        m2_inv: Matrix,
        pi1: Permutation,
        pi2: Permutation,
        r: [f64; 4],
        m_up: Matrix,
        m_down: Matrix,
        m3_inv: Matrix,
        kv: [Vec<f64>; 4],
    ) -> Option<Self> {
        let d_even = even_dim(dim);
        let half = d_even / 2 + 4;
        let full = randomized_dim(dim);
        let double = ciphertext_dim(dim);
        let shapes_ok = dim > 0
            && m1.rows() == half
            && m1.cols() == half
            && m2.rows() == half
            && m2.cols() == half
            && m_up.rows() == full
            && m_up.cols() == double
            && m_down.rows() == full
            && m_down.cols() == double
            && m3_inv.rows() == double
            && m3_inv.cols() == double
            && pi1.len() == d_even
            && pi2.len() == full
            && kv.iter().all(|v| v.len() == double)
            && r.iter().all(|x| *x != 0.0)
            && kv.iter().all(|v| v.iter().all(|x| *x != 0.0));
        if !shapes_ok {
            return None;
        }
        let kv24 = vector::hadamard(&kv[1], &kv[3]);
        Some(Self { dim, m1, m1_inv, m2, m2_inv, pi1, pi2, r, m_up, m_down, m3_inv, kv, kv24 })
    }
}

/// Borrowed raw key material (serialization support).
pub(crate) struct RawKeyParts<'a> {
    pub dim: usize,
    pub m1: &'a Matrix,
    pub m1_inv: &'a Matrix,
    pub m2: &'a Matrix,
    pub m2_inv: &'a Matrix,
    pub pi1: &'a Permutation,
    pub pi2: &'a Permutation,
    pub r: &'a [f64; 4],
    pub m_up: &'a Matrix,
    pub m_down: &'a Matrix,
    pub m3_inv: &'a Matrix,
    pub kv: [&'a [f64]; 4],
}

impl std::fmt::Debug for DceSecretKey {
    /// Deliberately redacts all key material.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DceSecretKey").field("dim", &self.dim).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::seeded_rng;

    #[test]
    fn masking_identity_holds() {
        let mut rng = seeded_rng(41);
        let sk = DceSecretKey::generate(10, &mut rng);
        let lhs = vector::hadamard(sk.kv(0), sk.kv(2));
        let rhs = vector::hadamard(sk.kv(1), sk.kv(3));
        assert!(vector::max_abs_diff(&lhs, &rhs) < 1e-12);
    }

    #[test]
    fn key_shapes_match_paper() {
        let mut rng = seeded_rng(42);
        let d = 12;
        let sk = DceSecretKey::generate(d, &mut rng);
        assert_eq!(sk.m1().rows(), d / 2 + 4);
        assert_eq!(sk.m_up().rows(), d + 8);
        assert_eq!(sk.m_up().cols(), 2 * d + 16);
        assert_eq!(sk.m3_inv().rows(), 2 * d + 16);
        assert_eq!(sk.kv(0).len(), 2 * d + 16);
    }

    #[test]
    fn r_values_are_nonzero() {
        let mut rng = seeded_rng(43);
        let sk = DceSecretKey::generate(6, &mut rng);
        assert!(sk.r().iter().all(|v| v.abs() >= 0.5));
    }

    #[test]
    fn debug_redacts_key_material() {
        let mut rng = seeded_rng(44);
        let sk = DceSecretKey::generate(4, &mut rng);
        let shown = format!("{sk:?}");
        assert!(shown.contains("dim"));
        assert!(!shown.contains("m1"));
    }

    #[test]
    #[should_panic(expected = "positive dimension")]
    fn zero_dim_rejected() {
        DceSecretKey::generate(0, &mut seeded_rng(45));
    }
}
