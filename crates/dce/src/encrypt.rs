//! Phase 2 of DCE: `Enc` and `TrapGen` (paper Section IV-B).

use crate::key::DceSecretKey;
use crate::randomize::{randomize_database, randomize_query};
use ppann_linalg::vector;
use rand::Rng;

/// Ciphertext of a database vector: `C_p = (p̄′₁, p̄′₂, p̄′₃, p̄′₄)`, four
/// vectors in `R^{2d+16}` (total `8d + 64` scalars, as analyzed in §IV-B).
///
/// Components 1–2 are consumed when the vector plays the role of `o` (the
/// heap candidate being challenged) and components 3–4 when it plays `p`
/// (the incumbent), so every database vector carries all four.
#[derive(Clone, Debug, PartialEq)]
pub struct DceCiphertext {
    pub(crate) c1: Vec<f64>,
    pub(crate) c2: Vec<f64>,
    pub(crate) c3: Vec<f64>,
    pub(crate) c4: Vec<f64>,
}

impl DceCiphertext {
    /// Dimension of each component (`2d + 16`).
    pub fn component_dim(&self) -> usize {
        self.c1.len()
    }

    /// Total number of scalars in the ciphertext (`8d + 64`).
    pub fn len_scalars(&self) -> usize {
        4 * self.c1.len()
    }

    /// Raw component access (for persistence).
    pub fn components(&self) -> [&[f64]; 4] {
        [&self.c1, &self.c2, &self.c3, &self.c4]
    }

    /// Rebuilds a ciphertext from raw components (for persistence).
    pub fn from_components(c1: Vec<f64>, c2: Vec<f64>, c3: Vec<f64>, c4: Vec<f64>) -> Self {
        assert!(
            c1.len() == c2.len() && c2.len() == c3.len() && c3.len() == c4.len(),
            "DceCiphertext components must share one dimension"
        );
        Self { c1, c2, c3, c4 }
    }
}

/// Trapdoor of a query vector: `T_q = q̄′ ∈ R^{2d+16}`.
#[derive(Clone, Debug, PartialEq)]
pub struct DceTrapdoor {
    pub(crate) t: Vec<f64>,
}

impl DceTrapdoor {
    /// Dimension of the trapdoor (`2d + 16`).
    pub fn dim(&self) -> usize {
        self.t.len()
    }

    /// Raw trapdoor data (for persistence).
    pub fn as_slice(&self) -> &[f64] {
        &self.t
    }

    /// Rebuilds a trapdoor from raw data (for persistence).
    pub fn from_vec(t: Vec<f64>) -> Self {
        Self { t }
    }
}

impl DceSecretKey {
    /// `Enc(p, SK) → C_p`: randomizes `p` into `p̄` then applies the vector
    /// transformation (Equations 10 and 13) to produce the four precomputed
    /// comparison components.
    pub fn encrypt(&self, p: &[f64], rng: &mut impl Rng) -> DceCiphertext {
        let pbar = randomize_database(self, p, rng);
        let up = self.m_up().vecmat(&pbar);
        let down = self.m_down().vecmat(&pbar);

        // Equation 10: ±1 offsets around the matrix images…
        let p1 = vector::add_scalar(&up, 1.0);
        let p2 = vector::add_scalar(&up, -1.0);
        let p3 = vector::add_scalar(&down, 1.0);
        let p4 = vector::add_scalar(&down, -1.0);

        // …Equation 13: positive per-vector blinding r_p and kv masking.
        let rp = rng.gen_range(0.5..2.0);
        let scale_mask = |v: &[f64], kv: &[f64]| {
            let mut out = vector::hadamard_div(v, kv);
            vector::scale_in_place(&mut out, rp);
            out
        };
        DceCiphertext {
            c1: scale_mask(&p1, self.kv(0)),
            c2: scale_mask(&p2, self.kv(1)),
            c3: scale_mask(&p3, self.kv(2)),
            c4: scale_mask(&p4, self.kv(3)),
        }
    }

    /// `TrapGen(q, SK) → T_q`: randomizes `q` into `q̄` then applies
    /// Equation 15: `q̄′ = r_q · (M₃⁻¹·[q̄ᵀ, −q̄ᵀ]ᵀ) ◦ (kv₂ ◦ kv₄)`.
    pub fn trapdoor(&self, q: &[f64], rng: &mut impl Rng) -> DceTrapdoor {
        let qbar = randomize_query(self, q, rng);
        let mut stacked = Vec::with_capacity(2 * qbar.len());
        stacked.extend_from_slice(&qbar);
        stacked.extend(qbar.iter().map(|v| -v));

        let image = self.m3_inv().matvec(&stacked);
        let rq = rng.gen_range(0.5..2.0);
        let mut t = vector::hadamard(&image, self.kv24());
        vector::scale_in_place(&mut t, rq);
        DceTrapdoor { t }
    }

    /// Encrypts a batch of database vectors deterministically from a base
    /// seed, in parallel (item `i` uses an RNG derived from `seed ^ h(i)`).
    pub fn encrypt_batch(&self, points: &[Vec<f64>], seed: u64) -> Vec<DceCiphertext> {
        ppann_linalg::parallel_map_indexed(points.len(), |i| {
            let mut rng =
                ppann_linalg::seeded_rng(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.encrypt(&points[i], &mut rng)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomize::ciphertext_dim;
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn ciphertext_and_trapdoor_shapes() {
        let mut rng = seeded_rng(51);
        for d in [3usize, 4, 10, 33] {
            let sk = DceSecretKey::generate(d, &mut rng);
            let p = uniform_vec(&mut rng, d, -1.0, 1.0);
            let c = sk.encrypt(&p, &mut rng);
            let t = sk.trapdoor(&p, &mut rng);
            assert_eq!(c.component_dim(), ciphertext_dim(d));
            assert_eq!(c.len_scalars(), 4 * ciphertext_dim(d));
            assert_eq!(t.dim(), ciphertext_dim(d));
        }
    }

    #[test]
    fn encryption_is_probabilistic() {
        let mut rng = seeded_rng(52);
        let sk = DceSecretKey::generate(8, &mut rng);
        let p = uniform_vec(&mut rng, 8, -1.0, 1.0);
        assert_ne!(sk.encrypt(&p, &mut rng), sk.encrypt(&p, &mut rng));
        assert_ne!(sk.trapdoor(&p, &mut rng), sk.trapdoor(&p, &mut rng));
    }

    #[test]
    fn batch_matches_single_item_derivation() {
        let mut rng = seeded_rng(53);
        let sk = DceSecretKey::generate(6, &mut rng);
        let pts: Vec<Vec<f64>> = (0..10).map(|_| uniform_vec(&mut rng, 6, -1.0, 1.0)).collect();
        let batch = sk.encrypt_batch(&pts, 7);
        let mut rng3 = ppann_linalg::seeded_rng(7 ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        assert_eq!(batch[3], sk.encrypt(&pts[3], &mut rng3));
    }

    #[test]
    fn roundtrip_components_persistence() {
        let mut rng = seeded_rng(54);
        let sk = DceSecretKey::generate(5, &mut rng);
        let p = uniform_vec(&mut rng, 5, -1.0, 1.0);
        let c = sk.encrypt(&p, &mut rng);
        let [a, b, cc, d] = c.components();
        let rebuilt =
            DceCiphertext::from_components(a.to_vec(), b.to_vec(), cc.to_vec(), d.to_vec());
        assert_eq!(rebuilt, c);
    }
}
