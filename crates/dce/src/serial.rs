//! Binary serialization of DCE secret keys.
//!
//! The data owner must persist its key bundle between sessions (losing the
//! key strands every ciphertext on the server). The format is the same
//! hand-rolled little-endian layout as the other snapshots in this
//! workspace: magic, version, dimensions, then the raw key material.
//! **This is key material** — the caller is responsible for storing the
//! bytes with appropriate protection.

use crate::key::DceSecretKey;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ppann_linalg::{Matrix, Permutation};

const MAGIC: &[u8; 4] = b"DCEK";
const VERSION: u32 = 1;

/// Key (de)serialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyCodecError {
    /// Magic/version mismatch.
    BadHeader,
    /// Truncated or inconsistent payload.
    Truncated,
}

impl std::fmt::Display for KeyCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyCodecError::BadHeader => write!(f, "bad key header"),
            KeyCodecError::Truncated => write!(f, "truncated key material"),
        }
    }
}
impl std::error::Error for KeyCodecError {}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for v in m.data() {
        buf.put_f64_le(*v);
    }
}

fn get_matrix(data: &mut Bytes) -> Result<Matrix, KeyCodecError> {
    if data.remaining() < 16 {
        return Err(KeyCodecError::Truncated);
    }
    let rows = data.get_u64_le() as usize;
    let cols = data.get_u64_le() as usize;
    if data.remaining() < rows * cols * 8 {
        return Err(KeyCodecError::Truncated);
    }
    let mut out = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        out.push(data.get_f64_le());
    }
    Ok(Matrix::from_vec(rows, cols, out))
}

fn put_vec(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u64_le(v.len() as u64);
    for x in v {
        buf.put_f64_le(*x);
    }
}

fn get_vec(data: &mut Bytes) -> Result<Vec<f64>, KeyCodecError> {
    if data.remaining() < 8 {
        return Err(KeyCodecError::Truncated);
    }
    let n = data.get_u64_le() as usize;
    if data.remaining() < n * 8 {
        return Err(KeyCodecError::Truncated);
    }
    Ok((0..n).map(|_| data.get_f64_le()).collect())
}

fn put_permutation(buf: &mut BytesMut, p: &Permutation) {
    buf.put_u64_le(p.len() as u64);
    for &x in p.map() {
        buf.put_u32_le(x);
    }
}

fn get_permutation(data: &mut Bytes) -> Result<Permutation, KeyCodecError> {
    if data.remaining() < 8 {
        return Err(KeyCodecError::Truncated);
    }
    let n = data.get_u64_le() as usize;
    if data.remaining() < n * 4 {
        return Err(KeyCodecError::Truncated);
    }
    Ok(Permutation::from_map((0..n).map(|_| data.get_u32_le()).collect()))
}

impl DceSecretKey {
    /// Serializes the complete key (all matrices, permutations, masking
    /// vectors and shared randoms).
    pub fn to_bytes(&self) -> Bytes {
        let parts = self.raw_parts();
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(parts.dim as u64);
        for m in
            [parts.m1, parts.m1_inv, parts.m2, parts.m2_inv, parts.m_up, parts.m_down, parts.m3_inv]
        {
            put_matrix(&mut buf, m);
        }
        put_permutation(&mut buf, parts.pi1);
        put_permutation(&mut buf, parts.pi2);
        for r in parts.r {
            buf.put_f64_le(*r);
        }
        for kv in parts.kv {
            put_vec(&mut buf, kv);
        }
        buf.freeze()
    }

    /// Restores a key serialized with [`DceSecretKey::to_bytes`].
    pub fn from_bytes(mut data: Bytes) -> Result<Self, KeyCodecError> {
        if data.remaining() < 8 || &data.copy_to_bytes(4)[..] != MAGIC {
            return Err(KeyCodecError::BadHeader);
        }
        if data.get_u32_le() != VERSION {
            return Err(KeyCodecError::BadHeader);
        }
        if data.remaining() < 8 {
            return Err(KeyCodecError::Truncated);
        }
        let dim = data.get_u64_le() as usize;
        let m1 = get_matrix(&mut data)?;
        let m1_inv = get_matrix(&mut data)?;
        let m2 = get_matrix(&mut data)?;
        let m2_inv = get_matrix(&mut data)?;
        let m_up = get_matrix(&mut data)?;
        let m_down = get_matrix(&mut data)?;
        let m3_inv = get_matrix(&mut data)?;
        let pi1 = get_permutation(&mut data)?;
        let pi2 = get_permutation(&mut data)?;
        if data.remaining() < 32 {
            return Err(KeyCodecError::Truncated);
        }
        let r = [data.get_f64_le(), data.get_f64_le(), data.get_f64_le(), data.get_f64_le()];
        let kv1 = get_vec(&mut data)?;
        let kv2 = get_vec(&mut data)?;
        let kv3 = get_vec(&mut data)?;
        let kv4 = get_vec(&mut data)?;
        DceSecretKey::from_raw_parts(
            dim,
            m1,
            m1_inv,
            m2,
            m2_inv,
            pi1,
            pi2,
            r,
            m_up,
            m_down,
            m3_inv,
            [kv1, kv2, kv3, kv4],
        )
        .ok_or(KeyCodecError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance_comp;
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn key_roundtrip_preserves_comparisons() {
        let mut rng = seeded_rng(321);
        let d = 9;
        let sk = DceSecretKey::generate(d, &mut rng);
        let restored = DceSecretKey::from_bytes(sk.to_bytes()).unwrap();

        // A ciphertext produced by the original key must compare correctly
        // against one produced by the restored key.
        let o = uniform_vec(&mut rng, d, -1.0, 1.0);
        let p = uniform_vec(&mut rng, d, -1.0, 1.0);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let c_o = sk.encrypt(&o, &mut rng);
        let c_p = restored.encrypt(&p, &mut rng);
        let t_q = restored.trapdoor(&q, &mut rng);
        let z = distance_comp(&c_o, &c_p, &t_q);
        let truth = ppann_linalg::vector::squared_euclidean(&o, &q)
            - ppann_linalg::vector::squared_euclidean(&p, &q);
        assert_eq!(z < 0.0, truth < 0.0);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(
            DceSecretKey::from_bytes(Bytes::from_static(b"nope")).unwrap_err(),
            KeyCodecError::BadHeader
        );
        let mut rng = seeded_rng(322);
        let sk = DceSecretKey::generate(4, &mut rng);
        let mut good = sk.to_bytes().to_vec();
        good.truncate(good.len() / 2);
        assert_eq!(
            DceSecretKey::from_bytes(Bytes::from(good)).unwrap_err(),
            KeyCodecError::Truncated
        );
    }
}
