//! `DistanceComp`: the secure distance comparison (paper Theorem 3).
//!
//! The fused `(ō′₁◦p̄′₃ − ō′₂◦p̄′₄)ᵀ·q̄′` pass dispatches through
//! [`ppann_linalg::kernels`]: AVX2/NEON when the CPU supports it, the scalar
//! oracle otherwise (or when `PPANN_FORCE_SCALAR` is set). The batched entry
//! point [`distance_comp_many`] scores one challenger against N incumbents
//! per trapdoor/challenger load — the shape of the refine phase's heap
//! screen in `ppann-core`.

use crate::encrypt::{DceCiphertext, DceTrapdoor};
use ppann_linalg::kernels::{self, Kernels};

/// Number of multiply-accumulate operations per secure comparison: `4d + 32`
/// (paper Section IV-B). `d` is the original vector dimension (rounded up to
/// even internally).
pub const fn sdc_mac_ops(d: usize) -> usize {
    4 * crate::randomize::even_dim(d) + 32
}

/// Checks every component of both ciphertexts against the trapdoor length.
/// All four operand vectors feed the fused kernel, so all four must agree —
/// load-bearing now that the kernels do pointer-width SIMD loads.
#[inline]
fn assert_dims(c_o: &DceCiphertext, c_p: &DceCiphertext, t_q: &DceTrapdoor) -> usize {
    let n = t_q.t.len();
    assert_eq!(c_o.c1.len(), n, "distance_comp: c_o.c1/trapdoor dim mismatch");
    assert_eq!(c_o.c2.len(), n, "distance_comp: c_o.c2/trapdoor dim mismatch");
    assert_eq!(c_p.c3.len(), n, "distance_comp: c_p.c3/trapdoor dim mismatch");
    assert_eq!(c_p.c4.len(), n, "distance_comp: c_p.c4/trapdoor dim mismatch");
    n
}

/// `DistanceComp(C_o, C_p, T_q)` — returns
/// `Z = 2·r_o·r_p·r_q·(dist(o,q) − dist(p,q))`.
///
/// The sign of `Z` answers the comparison exactly (Theorem 3):
/// `Z < 0 ⇔ dist(o,q) < dist(p,q)`. The magnitude is blinded by the three
/// fresh positive randoms and carries no usable information.
///
/// Cost: one fused pass of `2d+16` elements computing
/// `(ō′₁◦p̄′₃ − ō′₂◦p̄′₄)ᵀ·q̄′` — `4d + 32` MACs, O(d).
#[inline]
pub fn distance_comp(c_o: &DceCiphertext, c_p: &DceCiphertext, t_q: &DceTrapdoor) -> f64 {
    distance_comp_with(kernels::active(), c_o, c_p, t_q)
}

/// [`distance_comp`] against an explicit kernel table — the hook the parity
/// tests use to pin Theorem 3 to both dispatch paths.
#[inline]
pub fn distance_comp_with(
    k: &Kernels,
    c_o: &DceCiphertext,
    c_p: &DceCiphertext,
    t_q: &DceTrapdoor,
) -> f64 {
    assert_dims(c_o, c_p, t_q);
    (k.dce_comp)(&c_o.c1, &c_o.c2, &c_p.c3, &c_p.c4, &t_q.t)
}

/// Batched `DistanceComp`: scores one challenger `C_o` against every
/// incumbent in `c_ps`, returning each blinded `Z`. The challenger halves
/// and the trapdoor are loaded once and stay cache-resident across the
/// batch; per-incumbent results are bit-identical to [`distance_comp`].
pub fn distance_comp_many(
    c_o: &DceCiphertext,
    c_ps: &[&DceCiphertext],
    t_q: &DceTrapdoor,
) -> Vec<f64> {
    distance_comp_many_with(kernels::active(), c_o, c_ps, t_q)
}

/// [`distance_comp_many`] against an explicit kernel table.
pub fn distance_comp_many_with(
    k: &Kernels,
    c_o: &DceCiphertext,
    c_ps: &[&DceCiphertext],
    t_q: &DceTrapdoor,
) -> Vec<f64> {
    let pairs: Vec<(&[f64], &[f64])> = c_ps
        .iter()
        .map(|c_p| {
            assert_dims(c_o, c_p, t_q);
            (c_p.c3.as_slice(), c_p.c4.as_slice())
        })
        .collect();
    let mut out = vec![0.0; pairs.len()];
    (k.dce_comp_many)(&c_o.c1, &c_o.c2, &pairs, &t_q.t, &mut out);
    out
}

/// [`distance_comp_many`] into a caller-provided buffer: the warm path of
/// the refine phase. The pair list is staged in a fixed stack array and
/// chunked, so no heap allocation happens here — and chunking is invisible
/// to the results: each output is the same fused single-pair kernel pass
/// regardless of batch grouping, so every `Z` is bit-identical to
/// [`distance_comp`] (and to the allocating batched entry point).
///
/// # Panics
/// Panics if `out.len() != c_ps.len()` or on any dimension mismatch.
pub fn distance_comp_many_into(
    c_o: &DceCiphertext,
    c_ps: &[&DceCiphertext],
    t_q: &DceTrapdoor,
    out: &mut [f64],
) {
    assert_eq!(c_ps.len(), out.len(), "distance_comp_many_into: output length mismatch");
    let k = kernels::active();
    const CHUNK: usize = 64;
    let empty: (&[f64], &[f64]) = (&[], &[]);
    let mut pairs = [empty; CHUNK];
    for (cp_chunk, out_chunk) in c_ps.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
        for (slot, c_p) in pairs.iter_mut().zip(cp_chunk) {
            assert_dims(c_o, c_p, t_q);
            *slot = (c_p.c3.as_slice(), c_p.c4.as_slice());
        }
        (k.dce_comp_many)(&c_o.c1, &c_o.c2, &pairs[..cp_chunk.len()], &t_q.t, out_chunk);
    }
}

/// Convenience predicate: is `o` strictly closer to the query than `p`?
#[inline]
pub fn is_closer(c_o: &DceCiphertext, c_p: &DceCiphertext, t_q: &DceTrapdoor) -> bool {
    distance_comp(c_o, c_p, t_q) < 0.0
}

/// A comparator view over a trapdoor, yielding a total order on ciphertexts
/// by their (hidden) distance to the query. This is the only ordering the
/// refine phase of the PP-ANNS scheme is allowed to observe.
pub struct SecureOrd<'a> {
    trapdoor: &'a DceTrapdoor,
    kernels: &'static Kernels,
}

impl<'a> SecureOrd<'a> {
    /// Wraps a trapdoor, comparing through the process-wide dispatch.
    pub fn new(trapdoor: &'a DceTrapdoor) -> Self {
        Self::with_kernels(trapdoor, kernels::active())
    }

    /// Wraps a trapdoor with an explicit kernel table (total-order tests
    /// run the same ordering through every table the host supports).
    pub fn with_kernels(trapdoor: &'a DceTrapdoor, kernels: &'static Kernels) -> Self {
        Self { trapdoor, kernels }
    }

    /// `Ordering::Less` iff `dist(o, q) < dist(p, q)`.
    pub fn cmp(&self, c_o: &DceCiphertext, c_p: &DceCiphertext) -> std::cmp::Ordering {
        let z = distance_comp_with(self.kernels, c_o, c_p, self.trapdoor);
        if z < 0.0 {
            std::cmp::Ordering::Less
        } else if z > 0.0 {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DceSecretKey;
    use ppann_linalg::vector::squared_euclidean;
    use ppann_linalg::{seeded_rng, uniform_vec};

    /// Exhaustive sign-agreement check across dimensions and random triples,
    /// pinned to every kernel table this host can run (scalar oracle plus
    /// SIMD when detected) — encrypted-domain correctness must hold on the
    /// dispatched kernels, not just the oracle.
    #[test]
    fn theorem_3_sign_agreement() {
        for k in kernels::all() {
            let mut rng = seeded_rng(61);
            for d in [2usize, 3, 8, 20, 50, 128] {
                let sk = DceSecretKey::generate(d, &mut rng);
                let q = uniform_vec(&mut rng, d, -1.0, 1.0);
                let t = sk.trapdoor(&q, &mut rng);
                for _ in 0..50 {
                    let o = uniform_vec(&mut rng, d, -1.0, 1.0);
                    let p = uniform_vec(&mut rng, d, -1.0, 1.0);
                    let c_o = sk.encrypt(&o, &mut rng);
                    let c_p = sk.encrypt(&p, &mut rng);
                    let z = distance_comp_with(k, &c_o, &c_p, &t);
                    let truth = squared_euclidean(&o, &q) - squared_euclidean(&p, &q);
                    if truth.abs() > 1e-9 {
                        assert_eq!(
                            z < 0.0,
                            truth < 0.0,
                            "kernel={} d={d}: Z={z} disagrees with truth={truth}",
                            k.name
                        );
                    }
                }
            }
        }
    }

    /// The blinded magnitude is proportional to the true distance gap with a
    /// per-triple positive factor 2·r_o·r_p·r_q ∈ [2·0.5³, 2·2³).
    #[test]
    fn blinding_factor_is_bounded_positive() {
        for k in kernels::all() {
            let mut rng = seeded_rng(62);
            let d = 16;
            let sk = DceSecretKey::generate(d, &mut rng);
            let q = uniform_vec(&mut rng, d, -1.0, 1.0);
            let t = sk.trapdoor(&q, &mut rng);
            for _ in 0..50 {
                let o = uniform_vec(&mut rng, d, -1.0, 1.0);
                let p = uniform_vec(&mut rng, d, -1.0, 1.0);
                let truth = squared_euclidean(&o, &q) - squared_euclidean(&p, &q);
                if truth.abs() < 1e-6 {
                    continue;
                }
                let z =
                    distance_comp_with(k, &sk.encrypt(&o, &mut rng), &sk.encrypt(&p, &mut rng), &t);
                let factor = z / truth;
                assert!(
                    factor > 0.2 && factor < 16.5,
                    "kernel={}: blinding factor {factor} outside (2·0.5³, 2·2³)",
                    k.name
                );
            }
        }
    }

    #[test]
    fn reflexive_comparison_is_near_zero() {
        for k in kernels::all() {
            let mut rng = seeded_rng(63);
            let d = 10;
            let sk = DceSecretKey::generate(d, &mut rng);
            let q = uniform_vec(&mut rng, d, -1.0, 1.0);
            let t = sk.trapdoor(&q, &mut rng);
            let p = uniform_vec(&mut rng, d, -1.0, 1.0);
            let c_a = sk.encrypt(&p, &mut rng);
            let c_b = sk.encrypt(&p, &mut rng); // fresh encryption of the same vector
            let z = distance_comp_with(k, &c_a, &c_b, &t).abs();
            assert!(z < 1e-6, "kernel={}: self comparison |Z| = {z}", k.name);
        }
    }

    #[test]
    fn secure_ord_is_antisymmetric_and_transitive() {
        for k in kernels::all() {
            let mut rng = seeded_rng(64);
            let d = 8;
            let sk = DceSecretKey::generate(d, &mut rng);
            let q = uniform_vec(&mut rng, d, -1.0, 1.0);
            let t = sk.trapdoor(&q, &mut rng);
            let ord = SecureOrd::with_kernels(&t, k);
            let pts: Vec<Vec<f64>> = (0..6).map(|_| uniform_vec(&mut rng, d, -1.0, 1.0)).collect();
            let cts: Vec<_> = pts.iter().map(|p| sk.encrypt(p, &mut rng)).collect();
            // Sort indices by secure order and verify against plaintext order.
            let mut idx: Vec<usize> = (0..pts.len()).collect();
            idx.sort_by(|&a, &b| ord.cmp(&cts[a], &cts[b]));
            let mut expected: Vec<usize> = (0..pts.len()).collect();
            expected.sort_by(|&a, &b| {
                squared_euclidean(&pts[a], &q).partial_cmp(&squared_euclidean(&pts[b], &q)).unwrap()
            });
            assert_eq!(idx, expected, "kernel={}", k.name);
        }
    }

    /// Batched scoring is the same comparison: bit-identical to one
    /// [`distance_comp`] per incumbent, on every dispatch path.
    #[test]
    fn batched_comparison_matches_single_calls_bitwise() {
        for k in kernels::all() {
            let mut rng = seeded_rng(65);
            for d in [2usize, 7, 16, 33] {
                let sk = DceSecretKey::generate(d, &mut rng);
                let q = uniform_vec(&mut rng, d, -1.0, 1.0);
                let t = sk.trapdoor(&q, &mut rng);
                let c_o = sk.encrypt(&uniform_vec(&mut rng, d, -1.0, 1.0), &mut rng);
                let cts: Vec<_> = (0..9)
                    .map(|_| sk.encrypt(&uniform_vec(&mut rng, d, -1.0, 1.0), &mut rng))
                    .collect();
                let refs: Vec<&DceCiphertext> = cts.iter().collect();
                let zs = distance_comp_many_with(k, &c_o, &refs, &t);
                for (z, c_p) in zs.iter().zip(&cts) {
                    let single = distance_comp_with(k, &c_o, c_p, &t);
                    assert_eq!(z.to_bits(), single.to_bits(), "kernel={} d={d}", k.name);
                }
            }
        }
    }

    /// The allocation-free batched entry point crosses its stack-chunk
    /// boundary (64) without changing a single bit of output.
    #[test]
    fn into_variant_matches_allocating_variant_bitwise() {
        let mut rng = seeded_rng(67);
        let d = 12;
        let sk = DceSecretKey::generate(d, &mut rng);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let t = sk.trapdoor(&q, &mut rng);
        let c_o = sk.encrypt(&uniform_vec(&mut rng, d, -1.0, 1.0), &mut rng);
        for n in [1usize, 63, 64, 65, 200] {
            let cts: Vec<_> = (0..n)
                .map(|_| sk.encrypt(&uniform_vec(&mut rng, d, -1.0, 1.0), &mut rng))
                .collect();
            let refs: Vec<&DceCiphertext> = cts.iter().collect();
            let zs = distance_comp_many(&c_o, &refs, &t);
            let mut out = vec![0.0; n];
            distance_comp_many_into(&c_o, &refs, &t, &mut out);
            for (a, b) in zs.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "c_o.c2/trapdoor dim mismatch")]
    fn rejects_component_dim_mismatch() {
        let mut rng = seeded_rng(66);
        let sk = DceSecretKey::generate(8, &mut rng);
        let q = uniform_vec(&mut rng, 8, -1.0, 1.0);
        let t = sk.trapdoor(&q, &mut rng);
        let mut c_o = sk.encrypt(&uniform_vec(&mut rng, 8, -1.0, 1.0), &mut rng);
        let c_p = sk.encrypt(&uniform_vec(&mut rng, 8, -1.0, 1.0), &mut rng);
        c_o.c2.pop(); // corrupt one of the previously-unchecked components
        distance_comp(&c_o, &c_p, &t);
    }

    #[test]
    fn mac_ops_formula() {
        assert_eq!(sdc_mac_ops(128), 4 * 128 + 32);
        assert_eq!(sdc_mac_ops(5), 4 * 6 + 32); // odd dims padded
    }
}
