//! `DistanceComp`: the secure distance comparison (paper Theorem 3).

use crate::encrypt::{DceCiphertext, DceTrapdoor};

/// Number of multiply-accumulate operations per secure comparison: `4d + 32`
/// (paper Section IV-B). `d` is the original vector dimension (rounded up to
/// even internally).
pub const fn sdc_mac_ops(d: usize) -> usize {
    4 * crate::randomize::even_dim(d) + 32
}

/// `DistanceComp(C_o, C_p, T_q)` — returns
/// `Z = 2·r_o·r_p·r_q·(dist(o,q) − dist(p,q))`.
///
/// The sign of `Z` answers the comparison exactly (Theorem 3):
/// `Z < 0 ⇔ dist(o,q) < dist(p,q)`. The magnitude is blinded by the three
/// fresh positive randoms and carries no usable information.
///
/// Cost: one fused pass of `2d+16` elements computing
/// `(ō′₁◦p̄′₃ − ō′₂◦p̄′₄)ᵀ·q̄′` — `4d + 32` MACs, O(d).
#[inline]
pub fn distance_comp(c_o: &DceCiphertext, c_p: &DceCiphertext, t_q: &DceTrapdoor) -> f64 {
    let n = t_q.t.len();
    assert_eq!(c_o.c1.len(), n, "distance_comp: ciphertext/trapdoor dim mismatch");
    assert_eq!(c_p.c3.len(), n, "distance_comp: ciphertext/trapdoor dim mismatch");
    let (o1, o2) = (&c_o.c1, &c_o.c2);
    let (p3, p4) = (&c_p.c3, &c_p.c4);
    let t = &t_q.t;
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut i = 0;
    // Two-way unrolled fused loop: (o1*p3 - o2*p4) * t.
    while i + 1 < n {
        acc0 += (o1[i] * p3[i] - o2[i] * p4[i]) * t[i];
        acc1 += (o1[i + 1] * p3[i + 1] - o2[i + 1] * p4[i + 1]) * t[i + 1];
        i += 2;
    }
    if i < n {
        acc0 += (o1[i] * p3[i] - o2[i] * p4[i]) * t[i];
    }
    acc0 + acc1
}

/// Convenience predicate: is `o` strictly closer to the query than `p`?
#[inline]
pub fn is_closer(c_o: &DceCiphertext, c_p: &DceCiphertext, t_q: &DceTrapdoor) -> bool {
    distance_comp(c_o, c_p, t_q) < 0.0
}

/// A comparator view over a trapdoor, yielding a total order on ciphertexts
/// by their (hidden) distance to the query. This is the only ordering the
/// refine phase of the PP-ANNS scheme is allowed to observe.
pub struct SecureOrd<'a> {
    trapdoor: &'a DceTrapdoor,
}

impl<'a> SecureOrd<'a> {
    /// Wraps a trapdoor.
    pub fn new(trapdoor: &'a DceTrapdoor) -> Self {
        Self { trapdoor }
    }

    /// `Ordering::Less` iff `dist(o, q) < dist(p, q)`.
    pub fn cmp(&self, c_o: &DceCiphertext, c_p: &DceCiphertext) -> std::cmp::Ordering {
        let z = distance_comp(c_o, c_p, self.trapdoor);
        if z < 0.0 {
            std::cmp::Ordering::Less
        } else if z > 0.0 {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DceSecretKey;
    use ppann_linalg::vector::squared_euclidean;
    use ppann_linalg::{seeded_rng, uniform_vec};

    /// Exhaustive sign-agreement check across dimensions and random triples.
    #[test]
    fn theorem_3_sign_agreement() {
        let mut rng = seeded_rng(61);
        for d in [2usize, 3, 8, 20, 50, 128] {
            let sk = DceSecretKey::generate(d, &mut rng);
            let q = uniform_vec(&mut rng, d, -1.0, 1.0);
            let t = sk.trapdoor(&q, &mut rng);
            for _ in 0..50 {
                let o = uniform_vec(&mut rng, d, -1.0, 1.0);
                let p = uniform_vec(&mut rng, d, -1.0, 1.0);
                let c_o = sk.encrypt(&o, &mut rng);
                let c_p = sk.encrypt(&p, &mut rng);
                let z = distance_comp(&c_o, &c_p, &t);
                let truth = squared_euclidean(&o, &q) - squared_euclidean(&p, &q);
                if truth.abs() > 1e-9 {
                    assert_eq!(z < 0.0, truth < 0.0, "d={d}: Z={z} disagrees with truth={truth}");
                }
            }
        }
    }

    /// The blinded magnitude is proportional to the true distance gap with a
    /// per-triple positive factor 2·r_o·r_p·r_q ∈ [2·0.5³, 2·2³).
    #[test]
    fn blinding_factor_is_bounded_positive() {
        let mut rng = seeded_rng(62);
        let d = 16;
        let sk = DceSecretKey::generate(d, &mut rng);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let t = sk.trapdoor(&q, &mut rng);
        for _ in 0..50 {
            let o = uniform_vec(&mut rng, d, -1.0, 1.0);
            let p = uniform_vec(&mut rng, d, -1.0, 1.0);
            let truth = squared_euclidean(&o, &q) - squared_euclidean(&p, &q);
            if truth.abs() < 1e-6 {
                continue;
            }
            let z = distance_comp(&sk.encrypt(&o, &mut rng), &sk.encrypt(&p, &mut rng), &t);
            let factor = z / truth;
            assert!(
                factor > 0.2 && factor < 16.5,
                "blinding factor {factor} outside (2·0.5³, 2·2³)"
            );
        }
    }

    #[test]
    fn reflexive_comparison_is_near_zero() {
        let mut rng = seeded_rng(63);
        let d = 10;
        let sk = DceSecretKey::generate(d, &mut rng);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let t = sk.trapdoor(&q, &mut rng);
        let p = uniform_vec(&mut rng, d, -1.0, 1.0);
        let c_a = sk.encrypt(&p, &mut rng);
        let c_b = sk.encrypt(&p, &mut rng); // fresh encryption of the same vector
        let z = distance_comp(&c_a, &c_b, &t).abs();
        assert!(z < 1e-6, "self comparison |Z| = {z}");
    }

    #[test]
    fn secure_ord_is_antisymmetric_and_transitive() {
        let mut rng = seeded_rng(64);
        let d = 8;
        let sk = DceSecretKey::generate(d, &mut rng);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let t = sk.trapdoor(&q, &mut rng);
        let ord = SecureOrd::new(&t);
        let pts: Vec<Vec<f64>> = (0..6).map(|_| uniform_vec(&mut rng, d, -1.0, 1.0)).collect();
        let cts: Vec<_> = pts.iter().map(|p| sk.encrypt(p, &mut rng)).collect();
        // Sort indices by secure order and verify against plaintext order.
        let mut idx: Vec<usize> = (0..pts.len()).collect();
        idx.sort_by(|&a, &b| ord.cmp(&cts[a], &cts[b]));
        let mut expected: Vec<usize> = (0..pts.len()).collect();
        expected.sort_by(|&a, &b| {
            squared_euclidean(&pts[a], &q).partial_cmp(&squared_euclidean(&pts[b], &q)).unwrap()
        });
        assert_eq!(idx, expected);
    }

    #[test]
    fn mac_ops_formula() {
        assert_eq!(sdc_mac_ops(128), 4 * 128 + 32);
        assert_eq!(sdc_mac_ops(5), 4 * 6 + 32); // odd dims padded
    }
}
