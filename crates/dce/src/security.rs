//! Executable counterpart of the paper's security analysis (Section VI).
//!
//! Theorem 4 proves DCE IND-KPA secure with leakage
//! `L(o, p, q) = DistanceComp(C_o, C_p, T_q)`'s sign: the real view
//! (ciphertexts, trapdoors, intermediate `Z` values) is indistinguishable
//! from a **simulated** view generated from the leakage alone. This module
//! makes that argument runnable:
//!
//! * [`transcript`] extracts exactly what an honest-but-curious server
//!   observes from a refine phase — the comparison-sign matrix;
//! * [`simulate_view`] plays the paper's simulator: given *only* the
//!   leakage (no plaintexts, no key), it fabricates a view with an
//!   identical transcript;
//! * [`view_statistics`] / [`distinguishing_statistic`] implement a
//!   moment-based distinguisher so tests can check that real and simulated
//!   views are statistically as close as two real views of unrelated data.
//!
//! None of this *proves* security (the paper's reduction does that); it
//! pins the implementation to the proof's structure and would catch
//! regressions that leak structure into ciphertexts.

use crate::compare::distance_comp;
use crate::encrypt::{DceCiphertext, DceTrapdoor};
use crate::key::DceSecretKey;
use ppann_linalg::random_unit_vector;
use rand::Rng;

/// The server's observable for one query over a candidate set: the
/// antisymmetric sign matrix `t[i][j] = sign(dist(i,q) − dist(j,q))`
/// (−1, 0, +1). This is the leakage function `L` of Theorem 4.
pub fn transcript(cts: &[DceCiphertext], tq: &DceTrapdoor) -> Vec<Vec<i8>> {
    let n = cts.len();
    let mut t = vec![vec![0i8; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let z = distance_comp(&cts[i], &cts[j], tq);
            t[i][j] = if z < 0.0 {
                -1
            } else if z > 0.0 {
                1
            } else {
                0
            };
        }
    }
    t
}

/// A simulated view: fake ciphertexts plus a fake trapdoor that reproduce a
/// given leakage transcript.
pub struct SimulatedView {
    /// Simulator-fabricated database ciphertexts.
    pub ciphertexts: Vec<DceCiphertext>,
    /// Simulator-fabricated trapdoor.
    pub trapdoor: DceTrapdoor,
}

/// The ideal-world simulator of Theorem 4: given only the comparison-sign
/// leakage over `n` candidates, fabricate a view whose transcript matches.
///
/// Construction: recover the candidate ranking the signs encode (each row's
/// win-count), fabricate plaintexts at increasing radii around a fabricated
/// query, and encrypt under a *fresh random key* — every bit of the output
/// is derived from the leakage plus randomness, never from real data.
///
/// # Panics
/// Panics if the transcript is not consistent with a total order (real DCE
/// transcripts always are, by Theorem 3).
pub fn simulate_view(leakage: &[Vec<i8>], dim: usize, rng: &mut impl Rng) -> SimulatedView {
    let n = leakage.len();
    // Rank candidate i by how many rivals it beats (is closer than).
    let mut ranked: Vec<(usize, usize)> = (0..n)
        .map(|i| {
            let wins = leakage[i].iter().filter(|&&s| s < 0).count();
            (i, wins)
        })
        .collect();
    ranked.sort_by_key(|&(_, wins)| std::cmp::Reverse(wins));
    // wins = n-1 ⇒ closest. Verify total-order consistency.
    for (rank, &(_, wins)) in ranked.iter().enumerate() {
        assert_eq!(wins, n - 1 - rank, "leakage transcript is not a total order");
    }

    // Fabricate a query and points whose distances realize the order.
    let fake_query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut fake_points = vec![Vec::new(); n];
    for (rank, &(idx, _)) in ranked.iter().enumerate() {
        let radius = 0.1 + rank as f64 * 0.07;
        let dir = random_unit_vector(rng, dim);
        fake_points[idx] = fake_query.iter().zip(&dir).map(|(c, u)| c + radius * u).collect();
    }

    // Fresh random key: the simulator owns its own world.
    let sk = DceSecretKey::generate(dim, rng);
    let ciphertexts = fake_points.iter().map(|p| sk.encrypt(p, rng)).collect();
    let trapdoor = sk.trapdoor(&fake_query, rng);
    SimulatedView { ciphertexts, trapdoor }
}

/// Coordinate-level moments of a view's ciphertext components, the features
/// a moment-based distinguisher would use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViewStats {
    /// Mean coordinate value across all components.
    pub mean: f64,
    /// Variance of coordinate values.
    pub variance: f64,
    /// Mean absolute coordinate (scale proxy robust to sign symmetry).
    pub mean_abs: f64,
}

/// Computes [`ViewStats`] over every component of every ciphertext.
pub fn view_statistics(cts: &[DceCiphertext]) -> ViewStats {
    let mut count = 0usize;
    let mut sum = 0.0;
    let mut sum_abs = 0.0;
    for ct in cts {
        for comp in ct.components() {
            for &v in comp {
                sum += v;
                sum_abs += v.abs();
                count += 1;
            }
        }
    }
    let n = count.max(1) as f64;
    let mean = sum / n;
    let mut var_acc = 0.0;
    for ct in cts {
        for comp in ct.components() {
            for &v in comp {
                var_acc += (v - mean) * (v - mean);
            }
        }
    }
    ViewStats { mean, variance: var_acc / n, mean_abs: sum_abs / n }
}

/// A scale-free dissimilarity between two views' statistics — the advantage
/// proxy of a moment-based distinguisher. Small values mean the views look
/// alike to this (simple) adversary.
pub fn distinguishing_statistic(a: &ViewStats, b: &ViewStats) -> f64 {
    let rel = |x: f64, y: f64| {
        let denom = x.abs().max(y.abs()).max(1e-12);
        (x - y).abs() / denom
    };
    rel(a.mean_abs, b.mean_abs).max(rel(a.variance, b.variance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::{seeded_rng, uniform_vec};

    fn real_view(
        d: usize,
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<f64>>, Vec<DceCiphertext>, DceTrapdoor) {
        let mut rng = seeded_rng(seed);
        let sk = DceSecretKey::generate(d, &mut rng);
        let pts: Vec<Vec<f64>> = (0..n).map(|_| uniform_vec(&mut rng, d, -1.0, 1.0)).collect();
        let cts: Vec<_> = pts.iter().map(|p| sk.encrypt(p, &mut rng)).collect();
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let t = sk.trapdoor(&q, &mut rng);
        (pts, cts, t)
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) index pairs mirror the matrix symmetry being checked
    fn transcript_is_antisymmetric_total_order() {
        let (_, cts, t) = real_view(8, 12, 301);
        let tr = transcript(&cts, &t);
        for i in 0..12 {
            for j in 0..12 {
                if i != j {
                    assert_eq!(tr[i][j], -tr[j][i], "antisymmetry violated at ({i},{j})");
                }
            }
        }
        // Transitivity via win-count uniqueness.
        let mut wins: Vec<usize> =
            (0..12).map(|i| tr[i].iter().filter(|&&s| s < 0).count()).collect();
        wins.sort_unstable();
        assert_eq!(wins, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn simulator_reproduces_the_leakage_exactly() {
        let (_, cts, t) = real_view(6, 10, 302);
        let leakage = transcript(&cts, &t);
        let mut rng = seeded_rng(303);
        let sim = simulate_view(&leakage, 6, &mut rng);
        let sim_leakage = transcript(&sim.ciphertexts, &sim.trapdoor);
        assert_eq!(sim_leakage, leakage);
    }

    #[test]
    fn moment_distinguisher_has_no_advantage() {
        // The distance between (real view A, simulated view of A's leakage)
        // must be comparable to the distance between two *real* views of
        // unrelated databases — i.e. the simulator's output is no easier to
        // spot than natural variation.
        let (_, cts_a, t_a) = real_view(8, 20, 304);
        let (_, cts_b, _) = real_view(8, 20, 999_304);
        let leakage = transcript(&cts_a, &t_a);
        let mut rng = seeded_rng(305);
        let sim = simulate_view(&leakage, 8, &mut rng);

        let real_a = view_statistics(&cts_a);
        let real_b = view_statistics(&cts_b);
        let simulated = view_statistics(&sim.ciphertexts);

        let natural_gap = distinguishing_statistic(&real_a, &real_b);
        let sim_gap = distinguishing_statistic(&real_a, &simulated);
        // Allow the simulator a generous constant factor over natural
        // variation — what matters is the same order of magnitude, not a
        // formal bound (that is Theorem 4's job).
        assert!(
            sim_gap < (natural_gap * 10.0).max(1.0),
            "simulated view stands out: sim_gap {sim_gap}, natural {natural_gap}"
        );
    }
}
