//! Phase 1 of DCE: vector randomization (paper Section IV-A, Steps 1–4).
//!
//! Produces `p̄, q̄ ∈ R^{d+8}` with `p̄ᵀ·q̄ = ‖p‖² − 2·pᵀq` (Equation 5).
//! All dimension bookkeeping lives here: an odd input dimension is padded
//! with one zero coordinate (the pairwise recoding of Step 1 needs an even
//! `d`; padding changes neither norms nor inner products).

use crate::key::DceSecretKey;
use ppann_linalg::vector::norm_sq;
use rand::Rng;

/// Input dimension rounded up to the next even number.
pub const fn even_dim(d: usize) -> usize {
    if d.is_multiple_of(2) {
        d
    } else {
        d + 1
    }
}

/// Dimension of the randomized vector `p̄`: `d_even + 8`.
pub const fn randomized_dim(d: usize) -> usize {
    even_dim(d) + 8
}

/// Dimension of each ciphertext component and of the trapdoor: `2·d_even + 16`.
pub const fn ciphertext_dim(d: usize) -> usize {
    2 * randomized_dim(d)
}

/// Step 1 for a database vector: pairwise sum/difference recoding.
/// `p̌ = [p₁+p₂, p₁−p₂, p₃+p₄, p₃−p₄, …]`.
fn step1_database(p: &[f64], d_even: usize) -> Vec<f64> {
    let mut out = vec![0.0; d_even];
    for i in 0..d_even / 2 {
        let a = p.get(2 * i).copied().unwrap_or(0.0);
        let b = p.get(2 * i + 1).copied().unwrap_or(0.0);
        out[2 * i] = a + b;
        out[2 * i + 1] = a - b;
    }
    out
}

/// Step 1 for a query vector: the negated recoding, so that
/// `p̌ᵀ·q̌ = −2·pᵀq`.
fn step1_query(q: &[f64], d_even: usize) -> Vec<f64> {
    let mut out = step1_database(q, d_even);
    for v in &mut out {
        *v = -*v;
    }
    out
}

/// Per-vector randomness drawn during database-vector randomization.
struct DbRandomness {
    alpha1: f64,
    alpha2: f64,
    rp: [f64; 3],
}

fn positive_random(rng: &mut impl Rng) -> f64 {
    rng.gen_range(0.5..2.0)
}

fn signed_random(rng: &mut impl Rng) -> f64 {
    let m = positive_random(rng);
    if rng.gen::<bool>() {
        m
    } else {
        -m
    }
}

/// Steps 1–4 for a database vector `p`, producing `p̄ ∈ R^{d+8}`.
pub(crate) fn randomize_database(sk: &DceSecretKey, p: &[f64], rng: &mut impl Rng) -> Vec<f64> {
    assert_eq!(p.len(), sk.dim(), "randomize_database: dimension mismatch");
    let d_even = even_dim(sk.dim());
    let h = d_even / 2;

    // Step 1 + Step 2: recode then permute with π₁.
    let checked = step1_database(p, d_even);
    let bp = sk.pi1().apply(&checked);

    // Step 3: split with random slots. γ_p encodes ‖p‖² so that the paired
    // inner product with a query's (r₁…r₄) slots reconstructs it exactly.
    let rnd = DbRandomness {
        alpha1: signed_random(rng),
        alpha2: signed_random(rng),
        rp: [signed_random(rng), signed_random(rng), signed_random(rng)],
    };
    let r = sk.r();
    let gamma = (norm_sq(p) - rnd.rp[0] * r[0] - rnd.rp[1] * r[1] - rnd.rp[2] * r[2]) / r[3];

    let mut bp1 = Vec::with_capacity(h + 4);
    bp1.extend_from_slice(&bp[..h]);
    bp1.extend_from_slice(&[rnd.alpha1, -rnd.alpha1, rnd.rp[0], rnd.rp[1]]);

    let mut bp2 = Vec::with_capacity(h + 4);
    bp2.extend_from_slice(&bp[h..]);
    bp2.extend_from_slice(&[rnd.alpha2, rnd.alpha2, rnd.rp[2], gamma]);

    // Step 4: block matrix encryption (p̂₁ᵀM₁, p̂₂ᵀM₂) then permutation π₂.
    let mut joined = sk.m1().vecmat(&bp1);
    joined.extend(sk.m2().vecmat(&bp2));
    sk.pi2().apply(&joined)
}

/// Steps 1–4 for a query vector `q`, producing `q̄ ∈ R^{d+8}`.
pub(crate) fn randomize_query(sk: &DceSecretKey, q: &[f64], rng: &mut impl Rng) -> Vec<f64> {
    assert_eq!(q.len(), sk.dim(), "randomize_query: dimension mismatch");
    let d_even = even_dim(sk.dim());
    let h = d_even / 2;

    let checked = step1_query(q, d_even);
    let bq = sk.pi1().apply(&checked);

    let beta1 = signed_random(rng);
    let beta2 = signed_random(rng);
    let r = sk.r();

    let mut bq1 = Vec::with_capacity(h + 4);
    bq1.extend_from_slice(&bq[..h]);
    bq1.extend_from_slice(&[beta1, beta1, r[0], r[1]]);

    let mut bq2 = Vec::with_capacity(h + 4);
    bq2.extend_from_slice(&bq[h..]);
    bq2.extend_from_slice(&[beta2, -beta2, r[2], r[3]]);

    // Step 4 for queries uses the matrix inverses: q̄ = π₂([M₁⁻¹q̂₁, M₂⁻¹q̂₂]).
    let mut joined = sk.m1_inv().matvec(&bq1);
    joined.extend(sk.m2_inv().matvec(&bq2));
    sk.pi2().apply(&joined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::vector::{dot, norm_sq, squared_euclidean};
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn dims_helpers() {
        assert_eq!(even_dim(4), 4);
        assert_eq!(even_dim(5), 6);
        assert_eq!(randomized_dim(128), 136);
        assert_eq!(ciphertext_dim(128), 272);
    }

    #[test]
    fn step1_preserves_scaled_inner_product() {
        // p̌ᵀ·q̌ = −2·pᵀq (Equation 1).
        let mut rng = seeded_rng(31);
        for d in [2usize, 4, 8, 64] {
            let p = uniform_vec(&mut rng, d, -3.0, 3.0);
            let q = uniform_vec(&mut rng, d, -3.0, 3.0);
            let cp = step1_database(&p, d);
            let cq = step1_query(&q, d);
            let expected = -2.0 * dot(&p, &q);
            assert!((dot(&cp, &cq) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn step1_pads_odd_dims_with_zero() {
        let p = [1.0, 2.0, 3.0];
        let out = step1_database(&p, 4);
        assert_eq!(out, vec![3.0, -1.0, 3.0, 3.0]);
    }

    #[test]
    fn randomization_satisfies_equation_5() {
        // p̄ᵀ·q̄ = ‖p‖² − 2·pᵀq, for even and odd dimensions.
        let mut rng = seeded_rng(32);
        for d in [2usize, 5, 8, 17, 64] {
            let sk = DceSecretKey::generate(d, &mut rng);
            for _ in 0..10 {
                let p = uniform_vec(&mut rng, d, -1.0, 1.0);
                let q = uniform_vec(&mut rng, d, -1.0, 1.0);
                let pb = randomize_database(&sk, &p, &mut rng);
                let qb = randomize_query(&sk, &q, &mut rng);
                assert_eq!(pb.len(), randomized_dim(d));
                assert_eq!(qb.len(), randomized_dim(d));
                let expected = norm_sq(&p) - 2.0 * dot(&p, &q);
                assert!(
                    (dot(&pb, &qb) - expected).abs() < 1e-7,
                    "d={d}: got {}, want {expected}",
                    dot(&pb, &qb)
                );
            }
        }
    }

    #[test]
    fn equation_5_reconstructs_distance_difference() {
        // (ōᵀq̄ − p̄ᵀq̄) = dist(o,q) − dist(p,q): the ‖q‖² terms cancel.
        let mut rng = seeded_rng(33);
        let d = 12;
        let sk = DceSecretKey::generate(d, &mut rng);
        let o = uniform_vec(&mut rng, d, -1.0, 1.0);
        let p = uniform_vec(&mut rng, d, -1.0, 1.0);
        let q = uniform_vec(&mut rng, d, -1.0, 1.0);
        let ob = randomize_database(&sk, &o, &mut rng);
        let pb = randomize_database(&sk, &p, &mut rng);
        let qb = randomize_query(&sk, &q, &mut rng);
        let lhs = dot(&ob, &qb) - dot(&pb, &qb);
        let rhs = squared_euclidean(&o, &q) - squared_euclidean(&p, &q);
        assert!((lhs - rhs).abs() < 1e-7);
    }

    #[test]
    fn randomization_is_randomized() {
        // Two encryptions of the same vector differ (fresh per-vector slots).
        let mut rng = seeded_rng(34);
        let d = 6;
        let sk = DceSecretKey::generate(d, &mut rng);
        let p = uniform_vec(&mut rng, d, -1.0, 1.0);
        let a = randomize_database(&sk, &p, &mut rng);
        let b = randomize_database(&sk, &p, &mut rng);
        assert_ne!(a, b);
    }
}
