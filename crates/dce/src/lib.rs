//! # ppann-dce
//!
//! **Distance Comparison Encryption (DCE)** — the core contribution of the
//! reproduced paper (Section IV). DCE answers *exact* distance comparisons
//! over ciphertexts: given the ciphertexts of two database vectors `o`, `p`
//! and the trapdoor of a query `q`, [`distance_comp`](DceSecretKey) returns a
//! value whose **sign** equals the sign of `dist(o,q) − dist(p,q)`, while the
//! magnitude is blinded by fresh positive randomness (Theorem 3):
//!
//! ```text
//! Z(o,p,q) = 2·r_o·r_p·r_q·(dist(o,q) − dist(p,q)),   r_o, r_p, r_q > 0
//! ```
//!
//! The scheme has two phases:
//!
//! 1. **Vector randomization** (4 steps): pairwise sum/difference recoding,
//!    secret permutation `π₁`, splitting with per-vector random slots whose
//!    cross terms cancel, and block matrix encryption with `M₁`, `M₂`
//!    followed by permutation `π₂`. The result `p̄ ∈ R^{d+8}` satisfies
//!    `p̄ᵀ·q̄ = ‖p‖² − 2pᵀq` (Equation 5).
//! 2. **Vector transformation**: a big secret matrix `M₃ ∈ R^{(2d+16)²}` is
//!    split into `M_up`/`M_down`; the ±1 Hadamard identity (Equation 6) and
//!    the masking vectors `kv₁…kv₄` with `kv₁◦kv₃ = kv₂◦kv₄` (Equations
//!    12–15) turn the bilinear form into an inner product of *precomputable*
//!    per-vector data — so one secure comparison costs only `4d + 32`
//!    multiply-accumulates, O(d) instead of AME's O(d²).
//!
//! Ciphertext sizes match the paper exactly: a database vector becomes four
//! `(2d+16)`-dimensional vectors (`8d + 64` scalars), a query becomes one
//! `(2d+16)`-dimensional trapdoor.
//!
//! ```
//! use ppann_dce::DceSecretKey;
//! use ppann_linalg::{seeded_rng, vector};
//!
//! let mut rng = seeded_rng(1);
//! let sk = DceSecretKey::generate(4, &mut rng);
//! let o = [0.1, 0.2, 0.3, 0.4];
//! let p = [0.9, -0.8, 0.7, -0.6];
//! let q = [0.0, 0.1, 0.0, -0.1];
//! let c_o = sk.encrypt(&o, &mut rng);
//! let c_p = sk.encrypt(&p, &mut rng);
//! let t_q = sk.trapdoor(&q, &mut rng);
//! let z = ppann_dce::distance_comp(&c_o, &c_p, &t_q);
//! let truth = vector::squared_euclidean(&o, &q) - vector::squared_euclidean(&p, &q);
//! assert_eq!(z < 0.0, truth < 0.0);
//! ```

mod compare;
mod encrypt;
mod key;
mod randomize;
pub mod security;
mod serial;

pub use compare::{
    distance_comp, distance_comp_many, distance_comp_many_into, distance_comp_many_with,
    distance_comp_with, is_closer, sdc_mac_ops, SecureOrd,
};
pub use encrypt::{DceCiphertext, DceTrapdoor};
pub use key::DceSecretKey;
pub use randomize::{ciphertext_dim, even_dim, randomized_dim};
pub use serial::KeyCodecError;
