//! The hierarchical graph: construction, search, maintenance.

use crate::params::HnswParams;
use crate::scratch::{ScratchPool, SearchScratch};
use crate::store::VecStore;
use ppann_linalg::vector::{squared_euclidean, squared_euclidean_many};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// A search hit: node id plus its (squared) distance to the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Node id within the index.
    pub id: u32,
    /// Squared Euclidean distance to the query.
    pub dist: f64,
}

/// Max-heap entry ordered by distance (largest distance on top).
#[derive(Clone, Copy, PartialEq)]
pub(crate) struct FarthestFirst(pub(crate) Neighbor);
/// Min-heap entry ordered by distance (smallest distance on top).
#[derive(Clone, Copy, PartialEq)]
pub(crate) struct ClosestFirst(pub(crate) Neighbor);

impl Eq for FarthestFirst {}
impl Eq for ClosestFirst {}
impl Ord for FarthestFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.dist.partial_cmp(&other.0.dist).expect("NaN distance in HNSW heap")
    }
}
impl PartialOrd for FarthestFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ClosestFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.dist.partial_cmp(&self.0.dist).expect("NaN distance in HNSW heap")
    }
}
impl PartialOrd for ClosestFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-node adjacency: one neighbor list per layer `0..=level`.
#[derive(Clone, Debug, Default)]
struct Node {
    links: Vec<Vec<u32>>,
    deleted: bool,
}

impl Node {
    fn level(&self) -> usize {
        self.links.len().saturating_sub(1)
    }
}

/// Borrowed snapshot of an index's internals for serialization:
/// `(params, store, per-node (links, deleted), entry, live)`.
pub(crate) type RawParts<'a> =
    (&'a HnswParams, &'a VecStore, Vec<(Vec<Vec<u32>>, bool)>, Option<u32>, usize);

/// A Hierarchical Navigable Small World index over squared-Euclidean space.
pub struct Hnsw {
    params: HnswParams,
    store: VecStore,
    nodes: Vec<Node>,
    entry: Option<u32>,
    rng: StdRng,
    /// Scratch for the mutating paths (`insert`/`delete`), `mem::take`n
    /// around each use; searches use caller scratch or the thread pool.
    scratch: SearchScratch,
    /// Staging buffers for `shrink_if_needed` (it runs while `scratch` is
    /// checked out by `insert`, so it keeps its own base/dist storage).
    shrink_base: Vec<f64>,
    shrink_dists: Vec<f64>,
    live: usize,
    /// Distance computations performed by searches (the paper's cost unit
    /// for the filter phase). Relaxed atomic so `search(&self)` stays `&self`.
    dist_comps: AtomicU64,
}

impl Hnsw {
    /// An empty index for `dim`-dimensional vectors.
    ///
    /// # Panics
    /// Panics on invalid parameters (see [`HnswParams::validate`]).
    pub fn new(dim: usize, params: HnswParams) -> Self {
        params.validate().expect("invalid HNSW parameters");
        Self {
            params,
            store: VecStore::new(dim),
            nodes: Vec::new(),
            entry: None,
            rng: StdRng::seed_from_u64(params.seed),
            scratch: SearchScratch::default(),
            shrink_base: Vec::new(),
            shrink_dists: Vec::new(),
            live: 0,
            dist_comps: AtomicU64::new(0),
        }
    }

    /// Bulk-builds an index by sequential insertion (the construction order
    /// of the original algorithm; deterministic given the seed).
    pub fn build(dim: usize, params: HnswParams, vectors: &[Vec<f64>]) -> Self {
        let mut index = Self::new(dim, params);
        for v in vectors {
            index.insert(v);
        }
        index
    }

    /// Bulk-builds an index with parallel workers.
    ///
    /// A deterministic sequential prefix (`max(1% of n, 256)` inserts) lays
    /// down the upper layers, then worker threads insert the remainder under
    /// a global write lock with lock-free *search* phases: each worker runs
    /// the beam search for its vector against a read snapshot, then takes
    /// the lock only to wire edges. Graph quality matches sequential
    /// construction statistically (recall parity is tested), but edge sets
    /// are not bit-identical across thread counts — use [`Hnsw::build`]
    /// when determinism matters more than wall-clock.
    pub fn build_parallel(dim: usize, params: HnswParams, vectors: &[Vec<f64>]) -> Self {
        use std::sync::RwLock;
        let n = vectors.len();
        let prefix = (n / 100).max(256).min(n);
        let mut index = Self::new(dim, params);
        for v in &vectors[..prefix] {
            index.insert(v);
        }
        if prefix == n {
            return index;
        }
        // Pre-sample levels sequentially so the geometric distribution (and
        // determinism of levels) is preserved regardless of worker timing.
        let levels: Vec<usize> = (prefix..n).map(|_| index.sample_level()).collect();
        let shared = RwLock::new(index);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = available_threads_for_build().min(n - prefix).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Worker-owned scratch: the planning beam search under
                    // the shared lock cannot touch the index's own scratch,
                    // so each worker amortizes its own across inserts.
                    let mut scratch = SearchScratch::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n - prefix {
                            break;
                        }
                        let vector = &vectors[prefix + i];
                        let level = levels[i];
                        // Phase 1 (shared lock): beam-search candidate lists
                        // per layer against the current graph snapshot.
                        let plan = {
                            let g = shared.read().expect("lock poisoned");
                            g.plan_insertion(&mut scratch, vector, level)
                        };
                        // Phase 2 (exclusive lock): materialize the node.
                        let mut g = shared.write().expect("lock poisoned");
                        g.apply_insertion(vector, level, plan);
                    }
                });
            }
        });
        shared.into_inner().expect("lock poisoned")
    }

    /// Search phase of a parallel insertion: per-layer candidate lists for
    /// wiring, computed under a shared lock with caller-owned scratch (the
    /// shared lock means `&self`, so the index's own scratch is off-limits).
    fn plan_insertion(
        &self,
        scratch: &mut SearchScratch,
        vector: &[f64],
        level: usize,
    ) -> Vec<Vec<Neighbor>> {
        let Some(entry) = self.entry else { return Vec::new() };
        let top_level = self.nodes[entry as usize].level();
        let mut ep = entry;
        for layer in ((level + 1)..=top_level).rev() {
            ep = self.greedy_closest(vector, ep, layer, &mut scratch.dists);
        }
        let mut plan = Vec::new();
        let mut eps = vec![ep];
        for layer in (0..=level.min(top_level)).rev() {
            self.search_layer(scratch, vector, &eps, self.params.ef_construction, layer, true);
            eps.clear();
            eps.extend(scratch.out.iter().map(|nb| nb.id));
            if eps.is_empty() {
                eps.push(ep);
            }
            plan.push(scratch.out.clone());
        }
        plan.reverse(); // plan[layer] = candidates for that layer
        plan
    }

    /// Wiring phase of a parallel insertion, under the exclusive lock.
    /// Candidate distances were computed against a slightly stale snapshot;
    /// neighbor selection re-runs against current data, which is exactly
    /// what the sequential path does too.
    fn apply_insertion(&mut self, vector: &[f64], level: usize, plan: Vec<Vec<Neighbor>>) {
        let id = self.store.push(vector);
        self.nodes.push(Node { links: vec![Vec::new(); level + 1], deleted: false });
        self.live += 1;
        let Some(entry) = self.entry else {
            self.entry = Some(id);
            return;
        };
        let top_level = self.nodes[entry as usize].level();
        for (layer, found) in plan.into_iter().enumerate() {
            if layer > level.min(top_level) {
                break;
            }
            let m = self.params.max_degree(layer);
            let chosen = self.select_neighbors(vector, &found, m);
            for nb in &chosen {
                if nb.id == id || self.nodes[nb.id as usize].links.len() <= layer {
                    continue;
                }
                self.nodes[id as usize].links[layer].push(nb.id);
                self.nodes[nb.id as usize].links[layer].push(id);
                self.shrink_if_needed(nb.id, layer);
            }
        }
        if level > top_level {
            self.entry = Some(id);
        }
    }

    /// Number of live (non-deleted) vectors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live vectors remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots including tombstones (ids are never reused).
    pub fn capacity_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// Construction/search parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// Underlying vector store (ciphertexts in the PP-ANNS deployment).
    pub fn store(&self) -> &VecStore {
        &self.store
    }

    /// Whether `id` has been deleted.
    pub fn is_deleted(&self, id: u32) -> bool {
        self.nodes[id as usize].deleted
    }

    /// Distance computations performed so far by searches.
    pub fn distance_computations(&self) -> u64 {
        self.dist_comps.load(Ordering::Relaxed)
    }

    /// Resets the distance-computation counter.
    pub fn reset_distance_computations(&self) {
        self.dist_comps.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn dist(&self, a: &[f64], id: u32) -> f64 {
        self.dist_comps.fetch_add(1, Ordering::Relaxed);
        squared_euclidean(a, self.store.get(id))
    }

    /// Batched counterpart of [`Self::dist`]: scores `query` against every
    /// id in `ids` with one kernel call, so the query stays resident in
    /// registers across a whole adjacency list. Per-id results are
    /// bit-identical to [`Self::dist`], and the counter advances by the
    /// same amount — batching is a pure execution-shape change.
    fn dist_many(&self, query: &[f64], ids: &[u32], out: &mut Vec<f64>) {
        self.dist_comps.fetch_add(ids.len() as u64, Ordering::Relaxed);
        out.clear();
        out.resize(ids.len(), 0.0);
        // Row pointers are staged in a fixed stack array so the warm path
        // never allocates; chunking is per-row exact (each output is the
        // same single-row kernel result regardless of batch grouping).
        const CHUNK: usize = 64;
        let empty: &[f64] = &[];
        let mut rows: [&[f64]; CHUNK] = [empty; CHUNK];
        for (id_chunk, out_chunk) in ids.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            for (slot, &id) in rows.iter_mut().zip(id_chunk) {
                *slot = self.store.get(id);
            }
            squared_euclidean_many(query, &rows[..id_chunk.len()], out_chunk);
        }
    }

    /// Samples a level with the exponential decay `⌊−ln(U)·mL⌋`.
    fn sample_level(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() * self.params.ml()).floor() as usize
    }

    /// Greedy descent on one layer with beam width 1 (used above the
    /// insertion/search level). Each round scores the whole adjacency list
    /// with one batched call; keeping the first strict improvement in list
    /// order reproduces the sequential scan's choice exactly.
    fn greedy_closest(
        &self,
        query: &[f64],
        mut ep: u32,
        layer: usize,
        dists: &mut Vec<f64>,
    ) -> u32 {
        let mut best = self.dist(query, ep);
        loop {
            let links = &self.nodes[ep as usize].links[layer];
            if links.is_empty() {
                return ep;
            }
            self.dist_many(query, links, dists);
            let mut improved = false;
            for (&nb, &d) in links.iter().zip(dists.iter()) {
                if d < best {
                    best = d;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// `SEARCH-LAYER` (Algorithm 2 of the HNSW paper): beam search with
    /// width `ef`, leaving up to `ef` closest elements in `scratch.out`,
    /// closest first. `include_deleted` lets construction route through
    /// tombstones so the graph stays connected after deletions. Every
    /// scratch buffer is reset up front, so the output is independent of
    /// whatever search used the scratch before (the pooling contract).
    fn search_layer(
        &self,
        scratch: &mut SearchScratch,
        query: &[f64],
        eps: &[u32],
        ef: usize,
        layer: usize,
        include_deleted: bool,
    ) {
        let SearchScratch { visited, candidates, results, fresh, dists, out, .. } = scratch;
        visited.reset(self.nodes.len());
        candidates.clear();
        results.clear();

        for &ep in eps {
            if !visited.insert(ep) {
                continue;
            }
            let d = self.dist(query, ep);
            let n = Neighbor { id: ep, dist: d };
            candidates.push(ClosestFirst(n));
            if include_deleted || !self.nodes[ep as usize].deleted {
                results.push(FarthestFirst(n));
            }
        }
        while let Some(ClosestFirst(c)) = candidates.pop() {
            let worst = results.peek().map_or(f64::INFINITY, |f| f.0.dist);
            if c.dist > worst && results.len() >= ef {
                break;
            }
            // Batched expansion: score every unvisited neighbor of `c` in
            // one kernel call. The sequential loop also computed a distance
            // for each unvisited neighbor before its beam check, so the
            // work, the counter, and (per-row bit-identity) the results are
            // exactly those of per-neighbor calls.
            fresh.clear();
            fresh.extend(
                self.nodes[c.id as usize].links[layer]
                    .iter()
                    .copied()
                    .filter(|&nb| visited.insert(nb)),
            );
            if fresh.is_empty() {
                continue;
            }
            self.dist_many(query, fresh, dists);
            for (&nb, &d) in fresh.iter().zip(dists.iter()) {
                let worst = results.peek().map_or(f64::INFINITY, |f| f.0.dist);
                if results.len() < ef || d < worst {
                    candidates.push(ClosestFirst(Neighbor { id: nb, dist: d }));
                    if include_deleted || !self.nodes[nb as usize].deleted {
                        results.push(FarthestFirst(Neighbor { id: nb, dist: d }));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        // Drain the bounded max-heap: pops come farthest first, so the
        // reverse yields ascending distance without a sort (a stable sort
        // would allocate its merge buffer on every query).
        out.clear();
        while let Some(FarthestFirst(nb)) = results.pop() {
            out.push(nb);
        }
        out.reverse();
    }

    /// `SELECT-NEIGHBORS-HEURISTIC` (Algorithm 4): keeps candidates that are
    /// closer to the base point than to any already-selected neighbor, which
    /// preserves edge diversity and graph navigability.
    fn select_neighbors(&self, base: &[f64], candidates: &[Neighbor], m: usize) -> Vec<Neighbor> {
        let mut work: Vec<Neighbor> = candidates.to_vec();
        work.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
        let mut selected: Vec<Neighbor> = Vec::with_capacity(m);
        let mut pruned: Vec<Neighbor> = Vec::new();
        for cand in work {
            if selected.len() >= m {
                break;
            }
            let cand_vec = self.store.get(cand.id);
            let diverse = selected.iter().all(|s| {
                self.dist_comps.fetch_add(1, Ordering::Relaxed);
                squared_euclidean(cand_vec, self.store.get(s.id)) > cand.dist
            });
            if diverse {
                selected.push(cand);
            } else {
                pruned.push(cand);
            }
        }
        if self.params.keep_pruned {
            for p in pruned {
                if selected.len() >= m {
                    break;
                }
                selected.push(p);
            }
        }
        let _ = base; // base vector already folded into candidate distances
        selected
    }

    /// Inserts a vector, returning its id (Algorithm 1 of the HNSW paper).
    pub fn insert(&mut self, vector: &[f64]) -> u32 {
        let id = self.store.push(vector);
        let level = self.sample_level();
        self.nodes.push(Node { links: vec![Vec::new(); level + 1], deleted: false });
        self.live += 1;

        let Some(entry) = self.entry else {
            self.entry = Some(id);
            return id;
        };
        let top_level = self.nodes[entry as usize].level();
        // Stage the just-pushed vector in the reusable scratch buffer (the
        // store cannot stay borrowed across the wiring mutations below).
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut base = std::mem::take(&mut scratch.base);
        base.clear();
        base.extend_from_slice(self.store.get(id));

        // Phase 1: greedy descent through layers above the node's level.
        let mut ep = entry;
        for layer in ((level + 1)..=top_level).rev() {
            ep = self.greedy_closest(&base, ep, layer, &mut scratch.dists);
        }

        // Phase 2: beam search + bidirectional wiring on each shared layer.
        let mut eps = vec![ep];
        for layer in (0..=level.min(top_level)).rev() {
            self.search_layer(&mut scratch, &base, &eps, self.params.ef_construction, layer, true);
            let m = self.params.max_degree(layer);
            let chosen = self.select_neighbors(&base, &scratch.out, m);
            // Entry points for the next layer come from this layer's beam;
            // extract them before the wiring below reuses the scratch.
            eps.clear();
            eps.extend(scratch.out.iter().map(|n| n.id));
            if eps.is_empty() {
                eps.push(ep);
            }
            for nb in &chosen {
                self.nodes[id as usize].links[layer].push(nb.id);
                self.nodes[nb.id as usize].links[layer].push(id);
                self.shrink_if_needed(nb.id, layer);
            }
        }
        scratch.base = base;
        self.scratch = scratch;

        if level > top_level {
            self.entry = Some(id);
        }
        id
    }

    /// Re-runs neighbor selection on `node`'s list at `layer` if it exceeds
    /// the degree bound.
    fn shrink_if_needed(&mut self, node: u32, layer: usize) {
        let m = self.params.max_degree(layer);
        if self.nodes[node as usize].links[layer].len() <= m {
            return;
        }
        // Stage the base vector and distances in reusable buffers — this
        // runs while `insert` has the main scratch checked out, so it owns
        // its own staging storage.
        let mut base = std::mem::take(&mut self.shrink_base);
        let mut dists = std::mem::take(&mut self.shrink_dists);
        base.clear();
        base.extend_from_slice(self.store.get(node));
        let links = &self.nodes[node as usize].links[layer];
        self.dist_many(&base, links, &mut dists);
        let cands: Vec<Neighbor> =
            links.iter().zip(&dists).map(|(&nb, &d)| Neighbor { id: nb, dist: d }).collect();
        let chosen = self.select_neighbors(&base, &cands, m);
        self.nodes[node as usize].links[layer] = chosen.into_iter().map(|n| n.id).collect();
        self.shrink_base = base;
        self.shrink_dists = dists;
    }

    /// k-ANN search (Algorithm 5): returns up to `k` live neighbors,
    /// closest first, exploring with beam width `ef ≥ k`.
    ///
    /// Borrows this thread's pooled [`SearchScratch`], so on a warm thread
    /// the only heap allocation is the returned `Vec` itself. Results are
    /// bitwise identical to [`Self::search_in`] with any scratch.
    pub fn search(&self, query: &[f64], k: usize, ef: usize) -> Vec<Neighbor> {
        ScratchPool::with(|scratch| self.search_in(scratch, query, k, ef).to_vec())
    }

    /// Search variant reusing caller-owned scratch space and returning an
    /// owned `Vec` (callers that can hold the borrow should prefer
    /// [`Self::search_in`], which allocates nothing at all).
    pub fn search_with(
        &self,
        scratch: &mut SearchScratch,
        query: &[f64],
        k: usize,
        ef: usize,
    ) -> Vec<Neighbor> {
        self.search_in(scratch, query, k, ef).to_vec()
    }

    /// Allocation-free search: results are left in (and borrowed from)
    /// `scratch.out`. A warm scratch — one whose buffers already fit this
    /// graph and beam width — performs **zero** heap allocations here, and
    /// the output is bitwise identical regardless of the scratch's history
    /// (see [`SearchScratch`] and DESIGN.md §6 for the determinism contract).
    pub fn search_in<'s>(
        &self,
        scratch: &'s mut SearchScratch,
        query: &[f64],
        k: usize,
        ef: usize,
    ) -> &'s [Neighbor] {
        let Some(entry) = self.entry else {
            scratch.out.clear();
            return &scratch.out;
        };
        assert_eq!(query.len(), self.dim(), "search: query dimension mismatch");
        let ef = ef.max(k);
        let mut ep = entry;
        for layer in (1..=self.nodes[entry as usize].level()).rev() {
            ep = self.greedy_closest(query, ep, layer, &mut scratch.dists);
        }
        self.search_layer(scratch, query, &[ep], ef, 0, false);
        scratch.out.truncate(k);
        &scratch.out
    }

    /// Deletes a vector (paper Section V-D): tombstones the node, strips its
    /// edges, and repairs every in-neighbor by re-running k-ANN + neighbor
    /// selection for it — out-neighbors are unaffected, as the paper notes.
    /// Runs entirely server-side (no data-owner involvement).
    ///
    /// # Panics
    /// Panics if `id` is out of range or already deleted.
    pub fn delete(&mut self, id: u32) {
        assert!((id as usize) < self.nodes.len(), "delete: id out of range");
        assert!(!self.nodes[id as usize].deleted, "delete: node already deleted");
        self.nodes[id as usize].deleted = true;
        self.live -= 1;

        // Collect in-neighbors per layer before mutating.
        let max_layer = self.nodes[id as usize].level();
        let mut in_neighbors: Vec<Vec<u32>> = vec![Vec::new(); max_layer + 1];
        for (other, node) in self.nodes.iter().enumerate() {
            if other as u32 == id || node.deleted {
                continue;
            }
            for (layer, links) in node.links.iter().enumerate() {
                if layer <= max_layer && links.contains(&id) {
                    in_neighbors[layer].push(other as u32);
                }
            }
        }
        // Strip edges touching the tombstone.
        for layer_list in &mut in_neighbors {
            for &v in layer_list.iter() {
                let links = &mut self.nodes[v as usize].links;
                links.iter_mut().for_each(|l| l.retain(|&x| x != id));
            }
        }
        self.nodes[id as usize].links.iter_mut().for_each(|l| l.clear());

        // Move the entry point off the tombstone.
        if self.entry == Some(id) {
            self.entry = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| !n.deleted)
                .max_by_key(|(_, n)| n.level())
                .map(|(i, _)| i as u32);
        }

        // Repair each in-neighbor: re-select its layer links from a fresh
        // k-ANN of itself ("reinsert it into HNSW" per the paper).
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut base = std::mem::take(&mut scratch.base);
        for (layer, vs) in in_neighbors.iter().enumerate() {
            for &v in vs {
                if self.entry.is_none() {
                    break;
                }
                base.clear();
                base.extend_from_slice(self.store.get(v));
                let eps = [self.entry.unwrap()];
                self.search_layer(
                    &mut scratch,
                    &base,
                    &eps,
                    self.params.ef_construction,
                    layer.min(self.nodes[self.entry.unwrap() as usize].level()),
                    true,
                );
                let cands: Vec<Neighbor> = scratch
                    .out
                    .iter()
                    .copied()
                    .filter(|n| n.id != v && !self.is_deleted(n.id))
                    .collect();
                let m = self.params.max_degree(layer);
                let mut chosen = self.select_neighbors(&base, &cands, m);
                // Keep existing live links that the re-selection missed.
                let existing = self.nodes[v as usize].links[layer].clone();
                for e in existing {
                    if chosen.len() >= m {
                        break;
                    }
                    if !chosen.iter().any(|c| c.id == e) {
                        chosen.push(Neighbor { id: e, dist: 0.0 });
                    }
                }
                self.nodes[v as usize].links[layer] = chosen.into_iter().map(|n| n.id).collect();
            }
        }
        scratch.base = base;
        self.scratch = scratch;
    }

    /// Iterator over live node ids.
    pub fn live_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| !n.deleted).map(|(i, _)| i as u32)
    }

    /// Graph introspection for tests and serialization: the neighbor list of
    /// `id` at `layer`.
    pub fn links(&self, id: u32, layer: usize) -> &[u32] {
        &self.nodes[id as usize].links[layer]
    }

    /// The level of node `id`.
    pub fn node_level(&self, id: u32) -> usize {
        self.nodes[id as usize].level()
    }

    /// The current entry point, if any.
    pub fn entry_point(&self) -> Option<u32> {
        self.entry
    }

    pub(crate) fn raw_parts(&self) -> RawParts<'_> {
        (
            &self.params,
            &self.store,
            self.nodes.iter().map(|n| (n.links.clone(), n.deleted)).collect(),
            self.entry,
            self.live,
        )
    }

    pub(crate) fn from_raw_parts(
        params: HnswParams,
        store: VecStore,
        nodes: Vec<(Vec<Vec<u32>>, bool)>,
        entry: Option<u32>,
        live: usize,
    ) -> Self {
        Self {
            rng: StdRng::seed_from_u64(params.seed ^ nodes.len() as u64),
            params,
            store,
            nodes: nodes.into_iter().map(|(links, deleted)| Node { links, deleted }).collect(),
            entry,
            scratch: SearchScratch::default(),
            shrink_base: Vec::new(),
            shrink_dists: Vec::new(),
            live,
            dist_comps: AtomicU64::new(0),
        }
    }
}

/// Worker threads to use for parallel construction.
pub(crate) fn available_threads_for_build() -> usize {
    std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1)
}

impl std::fmt::Debug for Hnsw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hnsw")
            .field("dim", &self.dim())
            .field("live", &self.live)
            .field("slots", &self.nodes.len())
            .field("entry", &self.entry)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::exact_knn;
    use ppann_linalg::{seeded_rng, uniform_vec};
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded_rng(seed);
        let centers: Vec<Vec<f64>> =
            (0..8).map(|_| uniform_vec(&mut rng, dim, -1.0, 1.0)).collect();
        (0..n)
            .map(|_| {
                let c = &centers[rng.gen_range(0..centers.len())];
                c.iter().map(|x| x + rng.gen_range(-0.1..0.1)).collect()
            })
            .collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = Hnsw::new(4, HnswParams::default());
        assert!(index.search(&[0.0; 4], 5, 10).is_empty());
        assert!(index.is_empty());
    }

    #[test]
    fn single_point() {
        let mut index = Hnsw::new(2, HnswParams::default());
        index.insert(&[1.0, 1.0]);
        let hits = index.search(&[0.0, 0.0], 3, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
        assert!((hits[0].dist - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_on_tiny_sets() {
        let pts = clustered(50, 4, 7);
        let index = Hnsw::build(4, HnswParams::default(), &pts);
        let store = index.store().clone();
        for q in clustered(10, 4, 8) {
            let hits = index.search(&q, 5, 50);
            let truth = exact_knn(&store, &q, 5);
            let hit_ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
            let truth_ids: Vec<u32> = truth.iter().map(|h| h.id).collect();
            assert_eq!(hit_ids, truth_ids);
        }
    }

    #[test]
    fn recall_on_clustered_data() {
        let pts = clustered(2000, 16, 9);
        let index = Hnsw::build(16, HnswParams::default(), &pts);
        let queries = clustered(50, 16, 10);
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let truth: Vec<u32> = exact_knn(index.store(), q, 10).iter().map(|n| n.id).collect();
            let got: Vec<u32> = index.search(q, 10, 100).iter().map(|n| n.id).collect();
            total += truth.len();
            hit += truth.iter().filter(|t| got.contains(t)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.95, "recall {recall} too low");
    }

    #[test]
    fn degree_bounds_respected() {
        let pts = clustered(500, 8, 11);
        let index = Hnsw::build(8, HnswParams::default(), &pts);
        for id in index.live_ids() {
            for layer in 0..=index.node_level(id) {
                let deg = index.links(id, layer).len();
                assert!(
                    deg <= index.params().max_degree(layer),
                    "node {id} layer {layer} degree {deg}"
                );
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let pts = clustered(300, 8, 12);
        let a = Hnsw::build(8, HnswParams::default(), &pts);
        let b = Hnsw::build(8, HnswParams::default(), &pts);
        let q = &pts[0];
        let ha: Vec<u32> = a.search(q, 10, 50).iter().map(|n| n.id).collect();
        let hb: Vec<u32> = b.search(q, 10, 50).iter().map(|n| n.id).collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn deleted_nodes_vanish_from_results() {
        let pts = clustered(200, 8, 13);
        let mut index = Hnsw::build(8, HnswParams::default(), &pts);
        let q = pts[0].clone();
        let first = index.search(&q, 1, 30)[0].id;
        index.delete(first);
        assert!(index.is_deleted(first));
        let hits = index.search(&q, 10, 60);
        assert!(hits.iter().all(|h| h.id != first));
        assert_eq!(index.len(), 199);
    }

    #[test]
    fn heavy_deletion_keeps_index_usable() {
        let pts = clustered(300, 8, 14);
        let mut index = Hnsw::build(8, HnswParams::default(), &pts);
        for id in 0..100u32 {
            index.delete(id);
        }
        assert_eq!(index.len(), 200);
        // Recall against brute force over the survivors.
        let q = pts[150].clone();
        let got: Vec<u32> = index.search(&q, 5, 80).iter().map(|n| n.id).collect();
        assert!(!got.is_empty());
        assert!(got.iter().all(|&id| id >= 100));
        assert!(got.contains(&150));
    }

    #[test]
    fn insert_after_delete_works() {
        let pts = clustered(100, 4, 15);
        let mut index = Hnsw::build(4, HnswParams::default(), &pts);
        index.delete(0);
        let new_id = index.insert(&[9.0, 9.0, 9.0, 9.0]);
        let hits = index.search(&[9.0, 9.0, 9.0, 9.0], 1, 20);
        assert_eq!(hits[0].id, new_id);
    }

    #[test]
    fn distance_counter_moves() {
        let pts = clustered(200, 8, 16);
        let index = Hnsw::build(8, HnswParams::default(), &pts);
        index.reset_distance_computations();
        index.search(&pts[0], 10, 50);
        assert!(index.distance_computations() > 0);
    }

    #[test]
    fn parallel_build_reaches_sequential_recall() {
        let pts = clustered(3000, 8, 18);
        let queries = clustered(40, 8, 19);
        let seq = Hnsw::build(8, HnswParams::default(), &pts);
        let par = Hnsw::build_parallel(8, HnswParams::default(), &pts);
        assert_eq!(par.len(), 3000);
        let recall = |index: &Hnsw| {
            let mut hit = 0usize;
            for q in &queries {
                let truth: Vec<u32> =
                    exact_knn(index.store(), q, 10).iter().map(|n| n.id).collect();
                let got: Vec<u32> = index.search(q, 10, 100).iter().map(|n| n.id).collect();
                hit += truth.iter().filter(|t| got.contains(t)).count();
            }
            hit as f64 / (queries.len() * 10) as f64
        };
        let (rs, rp) = (recall(&seq), recall(&par));
        assert!(rp > rs - 0.05, "parallel recall {rp} lags sequential {rs}");
    }

    #[test]
    fn parallel_build_small_inputs() {
        // Prefix covers everything: parallel path degenerates to sequential.
        let pts = clustered(40, 4, 20);
        let par = Hnsw::build_parallel(4, HnswParams::default(), &pts);
        assert_eq!(par.len(), 40);
        let hits = par.search(&pts[3], 1, 20);
        assert_eq!(hits[0].id, 3);
    }

    #[test]
    fn parallel_build_respects_degree_bounds() {
        let pts = clustered(1200, 6, 21);
        let par = Hnsw::build_parallel(6, HnswParams::default(), &pts);
        for id in par.live_ids() {
            for layer in 0..=par.node_level(id) {
                assert!(par.links(id, layer).len() <= par.params().max_degree(layer));
            }
        }
    }

    #[test]
    fn entry_point_survives_deletion() {
        let pts = clustered(50, 4, 17);
        let mut index = Hnsw::build(4, HnswParams::default(), &pts);
        let ep = index.entry_point().unwrap();
        index.delete(ep);
        assert_ne!(index.entry_point(), Some(ep));
        assert!(!index.search(&pts[5], 3, 20).is_empty());
    }
}
