//! Comparison-only graph traversal.
//!
//! The paper's Section I sketches (and rejects) a *naive* PP-ANNS design:
//! ship a proximity graph to the cloud and run its search with secure
//! distance **comparisons** instead of distances. Beam search never actually
//! needs distance values — every heap operation and the termination test
//! reduce to "is `a` closer to the query than `b`?" — so the traversal can
//! run on any total-order oracle, e.g. DCE's `DistanceComp`.
//!
//! This module implements that traversal generically so the naive design can
//! be measured (ablation 5) rather than just argued about. The oracle is
//! `FnMut(u32, u32) -> bool` returning "first id is strictly closer".

use crate::graph::Hnsw;
use crate::visited::VisitedTable;

/// A poor man's ordered buffer keyed by a comparison oracle: keeps ids
/// sorted closest-first via binary-search insertion. Sizes here are bounded
/// by `ef`, so O(ef) insertion is acceptable and keeps the oracle-call count
/// at O(log ef) per insert.
struct OrderedByOracle {
    ids: Vec<u32>,
}

impl OrderedByOracle {
    fn new() -> Self {
        Self { ids: Vec::new() }
    }

    fn insert(&mut self, id: u32, closer: &mut impl FnMut(u32, u32) -> bool) {
        let pos = self.ids.partition_point(|&existing| closer(existing, id));
        self.ids.insert(pos, id);
    }

    fn pop_closest(&mut self) -> Option<u32> {
        if self.ids.is_empty() {
            None
        } else {
            Some(self.ids.remove(0))
        }
    }

    fn worst(&self) -> Option<u32> {
        self.ids.last().copied()
    }

    fn drop_worst(&mut self) {
        self.ids.pop();
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

impl Hnsw {
    /// k-ANN search that never evaluates a distance: all ordering decisions
    /// go through `closer(a, b)` ("is node `a` strictly closer to the query
    /// than node `b`?"). Returns up to `k` live ids, closest first.
    ///
    /// This is the engine of the naive HNSW-over-DCE design the paper argues
    /// against in Section I: correct, but every oracle call costs `4d + 32`
    /// MACs instead of `d`, and the graph itself must have been built on
    /// exact neighborhoods (leaking them to the server).
    pub fn search_by_comparison(
        &self,
        k: usize,
        ef: usize,
        mut closer: impl FnMut(u32, u32) -> bool,
    ) -> Vec<u32> {
        let Some(entry) = self.entry_point() else { return Vec::new() };
        let ef = ef.max(k);

        // Greedy descent through the upper layers.
        let mut ep = entry;
        for layer in (1..=self.node_level(entry)).rev() {
            loop {
                let mut improved = false;
                for &nb in self.links(ep, layer) {
                    if closer(nb, ep) {
                        ep = nb;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // Layer-0 beam search, comparison-driven.
        let mut visited = VisitedTable::default();
        visited.reset(self.capacity_slots());
        visited.insert(ep);
        let mut candidates = OrderedByOracle::new();
        let mut results = OrderedByOracle::new();
        candidates.insert(ep, &mut closer);
        if !self.is_deleted(ep) {
            results.insert(ep, &mut closer);
        }

        while let Some(c) = candidates.pop_closest() {
            if results.len() >= ef {
                if let Some(worst) = results.worst() {
                    // Termination: the closest unexpanded candidate is no
                    // closer than the worst retained result.
                    if !closer(c, worst) {
                        break;
                    }
                }
            }
            for &nb in self.links(c, 0) {
                if !visited.insert(nb) {
                    continue;
                }
                let admit =
                    results.len() < ef || results.worst().map(|w| closer(nb, w)).unwrap_or(true);
                if admit {
                    candidates.insert(nb, &mut closer);
                    if !self.is_deleted(nb) {
                        results.insert(nb, &mut closer);
                        if results.len() > ef {
                            results.drop_worst();
                        }
                    }
                }
            }
        }
        results.ids.truncate(k);
        results.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_knn_ids, HnswParams};
    use ppann_linalg::vector::squared_euclidean;
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn comparison_search_matches_distance_search() {
        let mut rng = seeded_rng(401);
        let pts: Vec<Vec<f64>> = (0..400).map(|_| uniform_vec(&mut rng, 8, -1.0, 1.0)).collect();
        let index = Hnsw::build(8, HnswParams::default(), &pts);
        for qi in 0..10 {
            let q = pts[qi].clone();
            let by_cmp = index.search_by_comparison(10, 60, |a, b| {
                squared_euclidean(&pts[a as usize], &q) < squared_euclidean(&pts[b as usize], &q)
            });
            let by_dist: Vec<u32> = index.search(&q, 10, 60).iter().map(|n| n.id).collect();
            assert_eq!(by_cmp, by_dist, "query {qi}");
        }
    }

    #[test]
    fn comparison_search_exact_on_tiny_sets() {
        let mut rng = seeded_rng(402);
        let pts: Vec<Vec<f64>> = (0..25).map(|_| uniform_vec(&mut rng, 4, -1.0, 1.0)).collect();
        let index = Hnsw::build(4, HnswParams::default(), &pts);
        let q = uniform_vec(&mut rng, 4, -1.0, 1.0);
        let got = index.search_by_comparison(5, 25, |a, b| {
            squared_euclidean(&pts[a as usize], &q) < squared_euclidean(&pts[b as usize], &q)
        });
        assert_eq!(got, exact_knn_ids(index.store(), &q, 5));
    }

    #[test]
    fn skips_deleted_nodes() {
        let mut rng = seeded_rng(403);
        let pts: Vec<Vec<f64>> = (0..60).map(|_| uniform_vec(&mut rng, 4, -1.0, 1.0)).collect();
        let mut index = Hnsw::build(4, HnswParams::default(), &pts);
        let q = pts[0].clone();
        index.delete(0);
        let got = index.search_by_comparison(5, 30, |a, b| {
            squared_euclidean(&pts[a as usize], &q) < squared_euclidean(&pts[b as usize], &q)
        });
        assert!(!got.contains(&0));
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_index() {
        let index = Hnsw::new(3, HnswParams::default());
        assert!(index.search_by_comparison(5, 10, |_, _| false).is_empty());
    }
}
