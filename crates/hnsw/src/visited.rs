//! Generation-stamped visited table.
//!
//! Best-first graph search marks thousands of nodes per query; clearing a
//! bitmap each time would cost O(n). A stamp table instead bumps a generation
//! counter per search and compares stamps, making `reset` O(1).

#[derive(Clone, Debug, Default)]
pub(crate) struct VisitedTable {
    stamp: u32,
    marks: Vec<u32>,
}

impl VisitedTable {
    /// Prepares the table for a new search over `n` nodes.
    pub fn reset(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: clear everything once every 2³² searches.
            self.marks.fill(0);
            self.stamp = 1;
        }
    }

    /// Marks `id`; returns `true` if it was not yet visited this generation.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.marks[id as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }

    /// Whether `id` is marked in the current generation.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.marks.get(id as usize).is_some_and(|&m| m == self.stamp)
    }

    /// Resident heap bytes held by the mark array.
    pub fn resident_bytes(&self) -> usize {
        self.marks.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_generation_forgets_marks() {
        let mut t = VisitedTable::default();
        t.reset(4);
        assert!(t.insert(2));
        assert!(!t.insert(2));
        t.reset(4);
        assert!(t.insert(2));
    }

    #[test]
    fn grows_on_demand() {
        let mut t = VisitedTable::default();
        t.reset(2);
        t.reset(10);
        assert!(t.insert(9));
    }
}
