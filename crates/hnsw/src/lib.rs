//! # ppann-hnsw
//!
//! A from-scratch implementation of **Hierarchical Navigable Small World**
//! graphs (Malkov & Yashunin, TPAMI 2020) — the state-of-the-art k-ANNS index
//! the reproduced paper uses for its filter phase (Section V-A).
//!
//! The index is built by the data owner over **DCPE/SAP-encrypted** vectors,
//! never over plaintext: the edges of a proximity graph leak neighborhood
//! relations, and building over noisy ciphertexts is exactly the paper's
//! privacy/accuracy trade-off. Nothing in this crate knows about encryption,
//! though — it indexes whatever `f64` vectors it is given, which also lets
//! the benchmarks run the plaintext-HNSW comparison of Section VII-B.
//!
//! Features beyond the basic index, all exercised by the paper:
//! * incremental **insertion** (Section V-D maintenance),
//! * **deletion with in-neighbor repair** (Section V-D),
//! * a distance-computation counter for the cost model,
//! * byte-level serialization for server snapshots,
//! * a brute-force scanner for ground truth.
//!
//! ```
//! use ppann_hnsw::{Hnsw, HnswParams, VecStore};
//!
//! let mut index = Hnsw::new(2, HnswParams::default());
//! for v in [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0]] {
//!     index.insert(&v);
//! }
//! let hits = index.search(&[0.1, 0.1], 2, 10);
//! assert_eq!(hits[0].id, 0);
//! let _ = VecStore::new(2);
//! ```

mod bruteforce;
mod comparison_search;
mod graph;
pub mod nsg;
mod params;
mod scratch;
mod serial;
mod store;
mod visited;

pub use bruteforce::{exact_knn, exact_knn_ids, exact_knn_in};
pub use graph::{Hnsw, Neighbor};
pub use nsg::{Nsg, NsgParams};
pub use params::HnswParams;
pub use scratch::{ScratchPool, SearchScratch};
pub use store::VecStore;
