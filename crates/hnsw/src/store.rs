//! Flat, cache-friendly vector storage.

/// A contiguous store of `dim`-dimensional `f64` vectors, addressed by dense
/// `u32` ids in insertion order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VecStore {
    dim: usize,
    data: Vec<f64>,
}

impl VecStore {
    /// An empty store of `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "VecStore dimension must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Builds a store from owned vectors.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_vectors(dim: usize, vectors: &[Vec<f64>]) -> Self {
        let mut s = Self::new(dim);
        for v in vectors {
            s.push(v);
        }
        s
    }

    /// Appends a vector, returning its id.
    pub fn push(&mut self, v: &[f64]) -> u32 {
        assert_eq!(v.len(), self.dim, "VecStore::push: dimension mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(v);
        id
    }

    /// The vector with the given id.
    #[inline]
    pub fn get(&self, id: u32) -> &[f64] {
        let i = id as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Number of stored vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Iterates over `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f64])> {
        self.data.chunks_exact(self.dim).enumerate().map(|(i, v)| (i as u32, v))
    }

    /// Raw flat buffer (for serialization).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Rebuilds from a raw flat buffer (for deserialization).
    pub fn from_raw(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "from_raw: ragged buffer");
        Self { dim, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut s = VecStore::new(3);
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_yields_in_order() {
        let s = VecStore::from_vectors(2, &[vec![0.0, 1.0], vec![2.0, 3.0]]);
        let ids: Vec<u32> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn ragged_push_rejected() {
        VecStore::new(2).push(&[1.0]);
    }
}
