//! Pooled per-thread search scratch.
//!
//! Every beam search marks a visited table, grows two beam heaps and a
//! handful of expansion buffers. Allocating those per query puts the
//! allocator on the hottest path in the system — and zeroing a fresh
//! visited table costs O(n) where the generation-stamped reuse costs O(1)
//! (see [`crate::visited`]). [`SearchScratch`] owns the whole working set
//! so a warm search performs **zero** heap allocations; [`ScratchPool`]
//! keeps warm instances per thread for callers that do not hold their own.
//!
//! ## Determinism contract
//!
//! Pooling may never change results: a search through a dirty, previously
//! used scratch returns *bitwise identical* output (same ids, same order,
//! same `f64` distance bits) as the same search through a fresh
//! `SearchScratch::default()`. Every buffer is either generation-stamped
//! (the visited tables) or fully overwritten/cleared before use, and the
//! property is enforced by the `scratch_parity` proptest. DESIGN.md §6
//! documents the contract.

use crate::graph::{ClosestFirst, FarthestFirst, Neighbor};
use crate::visited::VisitedTable;
use std::cell::RefCell;
use std::collections::BinaryHeap;

/// Reusable search working set: visited tables, beam heaps, expansion
/// buffers and a staging buffer for base vectors. One instance serves any
/// number of searches against any number of indexes (tables and buffers
/// grow to the largest graph seen and stay there).
#[derive(Default)]
pub struct SearchScratch {
    /// Generation-stamped visited marks (O(1) reset between searches).
    pub(crate) visited: VisitedTable,
    /// Second stamp table: NSG's "already expanded" set.
    pub(crate) expanded: VisitedTable,
    /// Beam frontier, closest first.
    pub(crate) candidates: BinaryHeap<ClosestFirst>,
    /// Running result set, farthest first (bounded to `ef`).
    pub(crate) results: BinaryHeap<FarthestFirst>,
    /// Unvisited neighbors of the node being expanded.
    pub(crate) fresh: Vec<u32>,
    /// Batched distances for `fresh` (also greedy-descent rows).
    pub(crate) dists: Vec<f64>,
    /// The search output, closest first — what `search_in` borrows out.
    pub(crate) out: Vec<Neighbor>,
    /// Staging copy of a stored base vector (insert/shrink/delete paths
    /// read a vector they are about to search for; the store cannot be
    /// borrowed across the mutation, so the bytes are staged here).
    pub(crate) base: Vec<f64>,
}

impl SearchScratch {
    /// Approximate resident heap bytes across every buffer — what the
    /// service's `scratch_bytes` gauge aggregates per worker. The model
    /// (DESIGN.md §6): `marks(n)` for each stamp table plus `ef`-bounded
    /// beam and expansion buffers, so
    /// `resident ≈ marks(n)·4·2 + ef·(16 + 16 + 16) + degree·(4 + 8)`.
    pub fn resident_bytes(&self) -> usize {
        self.visited.resident_bytes()
            + self.expanded.resident_bytes()
            + self.candidates.capacity() * std::mem::size_of::<ClosestFirst>()
            + self.results.capacity() * std::mem::size_of::<FarthestFirst>()
            + self.fresh.capacity() * std::mem::size_of::<u32>()
            + self.dists.capacity() * std::mem::size_of::<f64>()
            + self.out.capacity() * std::mem::size_of::<Neighbor>()
            + self.base.capacity() * std::mem::size_of::<f64>()
    }

    /// Drains `results` into `out`, closest first (heap pop yields
    /// farthest first; the reverse restores ascending distance order).
    /// Deterministic: the pop order is a pure function of the insertion
    /// sequence, never of the buffers' history.
    pub(crate) fn drain_results_into_out(&mut self) {
        self.out.clear();
        while let Some(FarthestFirst(nb)) = self.results.pop() {
            self.out.push(nb);
        }
        self.out.reverse();
    }
}

/// Retained warm instances per thread. Deeper nesting than this allocates
/// a fresh scratch and drops it on release — re-entrant callers stay
/// correct, they just stop amortizing.
const POOL_DEPTH: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<SearchScratch>> = const { RefCell::new(Vec::new()) };
}

/// A per-thread freelist of [`SearchScratch`] instances.
///
/// [`crate::Hnsw::search`] (and the NSG/brute-force equivalents) borrow a
/// scratch from here and return it afterwards, so even callers that never
/// heard of scratch reuse get allocation-free warm searches on a steady
/// thread. `thread_local!` storage makes check-out/check-in free of
/// synchronization and immune to the ABA hazards a shared lock-free
/// freelist would have to defend against; the cost is one warm scratch
/// per searching thread (`workers × resident_bytes`, OPERATIONS.md §2).
pub struct ScratchPool;

impl ScratchPool {
    /// Runs `f` with this thread's pooled scratch (allocating one only on
    /// the thread's first use, or when nested past `POOL_DEPTH`).
    pub fn with<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
        let mut scratch = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        let r = f(&mut scratch);
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < POOL_DEPTH {
                p.push(scratch);
            }
        });
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_instances() {
        // Grow a buffer inside the pooled scratch, then observe the same
        // capacity on the next checkout: the instance was retained.
        let grown = ScratchPool::with(|s| {
            s.out.reserve(1024);
            s.out.capacity()
        });
        let seen = ScratchPool::with(|s| s.out.capacity());
        assert!(seen >= grown, "pooled scratch was not reused ({seen} < {grown})");
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        ScratchPool::with(|outer| {
            outer.fresh.push(7);
            ScratchPool::with(|inner| {
                assert!(inner.fresh.is_empty(), "nested checkout aliased the outer scratch");
            });
            assert_eq!(outer.fresh, vec![7]);
        });
    }

    #[test]
    fn resident_bytes_tracks_growth() {
        let mut s = SearchScratch::default();
        let before = s.resident_bytes();
        s.dists.reserve(4096);
        assert!(s.resident_bytes() >= before + 4096 * 8);
    }
}
