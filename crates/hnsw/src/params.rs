//! HNSW construction and search parameters.

/// Construction parameters of the HNSW graph.
///
/// The paper's evaluation (Section VII-A) uses `m = 40` and
/// `efConstruction = 600`, selected by grid search; the defaults here are the
/// classic `m = 16`, `efConstruction = 200`, which the benchmark harness
/// overrides per experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HnswParams {
    /// Maximum out-degree on layers above 0 (the paper's `m`).
    pub m: usize,
    /// Maximum out-degree on layer 0 (conventionally `2·m`).
    pub m0: usize,
    /// Beam width while constructing (`efConstruction`).
    pub ef_construction: usize,
    /// Extend candidate sets with neighbors-of-neighbors during selection
    /// (Algorithm 4's `extendCandidates`).
    pub extend_candidates: bool,
    /// Back-fill pruned candidates up to `M` (Algorithm 4's
    /// `keepPrunedConnections`).
    pub keep_pruned: bool,
    /// Seed for the level sampler, making construction deterministic.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            m0: 32,
            ef_construction: 200,
            extend_candidates: false,
            keep_pruned: true,
            seed: 0x5EED,
        }
    }
}

impl HnswParams {
    /// Paper-style parameters (`m = 40`, `efConstruction = 600`).
    pub fn paper() -> Self {
        Self { m: 40, m0: 80, ef_construction: 600, ..Self::default() }
    }

    /// Maximum degree allowed on `layer`.
    pub fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.m0
        } else {
            self.m
        }
    }

    /// Level-sampling normalization `mL = 1/ln(m)`.
    pub fn ml(&self) -> f64 {
        1.0 / (self.m as f64).ln()
    }

    /// Validates invariants (degrees ≥ 2, beam ≥ 1).
    pub fn validate(&self) -> Result<(), String> {
        if self.m < 2 {
            return Err(format!("m must be ≥ 2, got {}", self.m));
        }
        if self.m0 < self.m {
            return Err(format!("m0 ({}) must be ≥ m ({})", self.m0, self.m));
        }
        if self.ef_construction == 0 {
            return Err("ef_construction must be ≥ 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(HnswParams::default().validate().is_ok());
        assert!(HnswParams::paper().validate().is_ok());
    }

    #[test]
    fn degree_per_layer() {
        let p = HnswParams::default();
        assert_eq!(p.max_degree(0), 32);
        assert_eq!(p.max_degree(1), 16);
        assert_eq!(p.max_degree(5), 16);
    }

    #[test]
    fn invalid_params_rejected() {
        let p = HnswParams { m: 1, ..Default::default() };
        assert!(p.validate().is_err());
        let p2 = HnswParams { m0: 4, ..Default::default() };
        assert!(p2.validate().is_err());
    }
}
