//! Exact k-NN by linear scan — ground truth for every recall measurement.

use crate::graph::Neighbor;
use crate::store::VecStore;
use ppann_linalg::vector::squared_euclidean_many;
use std::collections::BinaryHeap;

/// Rows scored per batched kernel call during the scan.
const CHUNK: usize = 64;

struct MaxByDist(Neighbor);
impl PartialEq for MaxByDist {
    fn eq(&self, other: &Self) -> bool {
        self.0.dist == other.0.dist
    }
}
impl Eq for MaxByDist {}
impl Ord for MaxByDist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.dist.partial_cmp(&other.0.dist).expect("NaN distance")
    }
}
impl PartialOrd for MaxByDist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact k-nearest neighbors of `query` in `store`, closest first.
///
/// The scan runs in batched kernel calls of `CHUNK` (64) rows (bit-identical
/// per row to single-pair calls), offering each distance to the top-k heap
/// in id order exactly as the per-row loop did.
pub fn exact_knn(store: &VecStore, query: &[f64], k: usize) -> Vec<Neighbor> {
    let mut heap: BinaryHeap<MaxByDist> = BinaryHeap::with_capacity(k + 1);
    let mut rows: Vec<&[f64]> = Vec::with_capacity(CHUNK);
    let mut dists = [0.0f64; CHUNK];
    let mut base = 0u32;
    let n = store.len() as u32;
    while base < n {
        let end = (base + CHUNK as u32).min(n);
        rows.clear();
        rows.extend((base..end).map(|id| store.get(id)));
        let out = &mut dists[..rows.len()];
        squared_euclidean_many(query, &rows, out);
        for (off, &dist) in out.iter().enumerate() {
            let id = base + off as u32;
            if heap.len() < k {
                heap.push(MaxByDist(Neighbor { id, dist }));
            } else if let Some(top) = heap.peek() {
                if dist < top.0.dist {
                    heap.pop();
                    heap.push(MaxByDist(Neighbor { id, dist }));
                }
            }
        }
        base = end;
    }
    let mut out: Vec<Neighbor> = heap.into_iter().map(|m| m.0).collect();
    out.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    out
}

/// Exact k-NN ids only.
pub fn exact_knn_ids(store: &VecStore, query: &[f64], k: usize) -> Vec<u32> {
    exact_knn(store, query, k).into_iter().map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_true_neighbors() {
        let store =
            VecStore::from_vectors(1, &[vec![0.0], vec![10.0], vec![3.0], vec![-1.0], vec![7.0]]);
        let ids = exact_knn_ids(&store, &[2.0], 3);
        assert_eq!(ids, vec![2, 0, 3]);
    }

    #[test]
    fn k_larger_than_n() {
        let store = VecStore::from_vectors(1, &[vec![1.0], vec![2.0]]);
        assert_eq!(exact_knn(&store, &[0.0], 10).len(), 2);
    }

    #[test]
    fn results_sorted_by_distance() {
        let store = VecStore::from_vectors(2, &[vec![5.0, 0.0], vec![1.0, 0.0], vec![3.0, 0.0]]);
        let hits = exact_knn(&store, &[0.0, 0.0], 3);
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
