//! Exact k-NN by linear scan — ground truth for every recall measurement.

use crate::graph::Neighbor;
use crate::store::VecStore;
use ppann_linalg::vector::squared_euclidean;
use std::collections::BinaryHeap;

struct MaxByDist(Neighbor);
impl PartialEq for MaxByDist {
    fn eq(&self, other: &Self) -> bool {
        self.0.dist == other.0.dist
    }
}
impl Eq for MaxByDist {}
impl Ord for MaxByDist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.dist.partial_cmp(&other.0.dist).expect("NaN distance")
    }
}
impl PartialOrd for MaxByDist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact k-nearest neighbors of `query` in `store`, closest first.
pub fn exact_knn(store: &VecStore, query: &[f64], k: usize) -> Vec<Neighbor> {
    let mut heap: BinaryHeap<MaxByDist> = BinaryHeap::with_capacity(k + 1);
    for (id, v) in store.iter() {
        let dist = squared_euclidean(query, v);
        if heap.len() < k {
            heap.push(MaxByDist(Neighbor { id, dist }));
        } else if let Some(top) = heap.peek() {
            if dist < top.0.dist {
                heap.pop();
                heap.push(MaxByDist(Neighbor { id, dist }));
            }
        }
    }
    let mut out: Vec<Neighbor> = heap.into_iter().map(|m| m.0).collect();
    out.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    out
}

/// Exact k-NN ids only.
pub fn exact_knn_ids(store: &VecStore, query: &[f64], k: usize) -> Vec<u32> {
    exact_knn(store, query, k).into_iter().map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_true_neighbors() {
        let store =
            VecStore::from_vectors(1, &[vec![0.0], vec![10.0], vec![3.0], vec![-1.0], vec![7.0]]);
        let ids = exact_knn_ids(&store, &[2.0], 3);
        assert_eq!(ids, vec![2, 0, 3]);
    }

    #[test]
    fn k_larger_than_n() {
        let store = VecStore::from_vectors(1, &[vec![1.0], vec![2.0]]);
        assert_eq!(exact_knn(&store, &[0.0], 10).len(), 2);
    }

    #[test]
    fn results_sorted_by_distance() {
        let store = VecStore::from_vectors(2, &[vec![5.0, 0.0], vec![1.0, 0.0], vec![3.0, 0.0]]);
        let hits = exact_knn(&store, &[0.0, 0.0], 3);
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
