//! Exact k-NN by linear scan — ground truth for every recall measurement.

use crate::graph::{FarthestFirst, Neighbor};
use crate::scratch::{ScratchPool, SearchScratch};
use crate::store::VecStore;
use ppann_linalg::vector::squared_euclidean_many;

/// Rows scored per batched kernel call during the scan.
const CHUNK: usize = 64;

/// Exact k-nearest neighbors of `query` in `store`, closest first.
///
/// Borrows this thread's pooled scratch, so on a warm thread the only heap
/// allocation is the returned `Vec`. Results are identical to
/// [`exact_knn_in`] with any scratch.
pub fn exact_knn(store: &VecStore, query: &[f64], k: usize) -> Vec<Neighbor> {
    ScratchPool::with(|scratch| exact_knn_in(scratch, store, query, k).to_vec())
}

/// Allocation-free exact k-NN: results are left in (and borrowed from)
/// `scratch.out`, closest first.
///
/// The scan runs in batched kernel calls of `CHUNK` (64) rows (bit-identical
/// per row to single-pair calls), offering each distance to the top-k heap
/// in id order exactly as the per-row loop did. Row pointers live in a fixed
/// stack array and the heap/output buffers come from `scratch`, so a warm
/// scratch performs zero heap allocations.
pub fn exact_knn_in<'s>(
    scratch: &'s mut SearchScratch,
    store: &VecStore,
    query: &[f64],
    k: usize,
) -> &'s [Neighbor] {
    let heap = &mut scratch.results;
    heap.clear();
    let empty: &[f64] = &[];
    let mut rows: [&[f64]; CHUNK] = [empty; CHUNK];
    let mut dists = [0.0f64; CHUNK];
    let mut base = 0u32;
    let n = store.len() as u32;
    while base < n {
        let end = (base + CHUNK as u32).min(n);
        let len = (end - base) as usize;
        for (slot, id) in rows.iter_mut().zip(base..end) {
            *slot = store.get(id);
        }
        let out = &mut dists[..len];
        squared_euclidean_many(query, &rows[..len], out);
        for (off, &dist) in out.iter().enumerate() {
            let id = base + off as u32;
            if heap.len() < k {
                heap.push(FarthestFirst(Neighbor { id, dist }));
            } else if let Some(top) = heap.peek() {
                if dist < top.0.dist {
                    heap.pop();
                    heap.push(FarthestFirst(Neighbor { id, dist }));
                }
            }
        }
        base = end;
    }
    scratch.drain_results_into_out();
    &scratch.out
}

/// Exact k-NN ids only.
pub fn exact_knn_ids(store: &VecStore, query: &[f64], k: usize) -> Vec<u32> {
    ScratchPool::with(|scratch| {
        exact_knn_in(scratch, store, query, k).iter().map(|n| n.id).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_true_neighbors() {
        let store =
            VecStore::from_vectors(1, &[vec![0.0], vec![10.0], vec![3.0], vec![-1.0], vec![7.0]]);
        let ids = exact_knn_ids(&store, &[2.0], 3);
        assert_eq!(ids, vec![2, 0, 3]);
    }

    #[test]
    fn k_larger_than_n() {
        let store = VecStore::from_vectors(1, &[vec![1.0], vec![2.0]]);
        assert_eq!(exact_knn(&store, &[0.0], 10).len(), 2);
    }

    #[test]
    fn results_sorted_by_distance() {
        let store = VecStore::from_vectors(2, &[vec![5.0, 0.0], vec![1.0, 0.0], vec![3.0, 0.0]]);
        let hits = exact_knn(&store, &[0.0, 0.0], 3);
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn dirty_scratch_matches_fresh() {
        let store = VecStore::from_vectors(
            2,
            &[vec![5.0, 1.0], vec![1.0, 2.0], vec![3.0, 0.5], vec![0.5, 4.0]],
        );
        let mut dirty = SearchScratch::default();
        // Dirty the scratch with an unrelated query, then check parity.
        exact_knn_in(&mut dirty, &store, &[9.0, 9.0], 4);
        for k in [1, 2, 4, 8] {
            let a = exact_knn_in(&mut dirty, &store, &[0.0, 0.0], k).to_vec();
            let b = exact_knn_in(&mut SearchScratch::default(), &store, &[0.0, 0.0], k).to_vec();
            assert_eq!(a, b);
        }
    }
}
