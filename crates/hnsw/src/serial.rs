//! Byte-level serialization of HNSW snapshots.
//!
//! The cloud server persists the privacy-preserving index between sessions;
//! since no serialization-format crate is on the approved dependency list the
//! format is a hand-rolled little-endian layout over `bytes`:
//!
//! ```text
//! magic "HNSW" | version u32 | dim u64 | params | entry (u64::MAX = none)
//! | live u64 | n_nodes u64 | store f64s | per node: deleted u8, n_layers u32,
//!   per layer: len u32, ids u32*
//! ```

use crate::graph::Hnsw;
use crate::params::HnswParams;
use crate::store::VecStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"HNSW";
const VERSION: u32 = 1;

/// Serialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Magic bytes or version did not match.
    BadHeader,
    /// The buffer ended prematurely or contained inconsistent lengths.
    Truncated,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "bad snapshot header"),
            SnapshotError::Truncated => write!(f, "truncated snapshot"),
        }
    }
}
impl std::error::Error for SnapshotError {}

impl Hnsw {
    /// Serializes the full index (vectors + graph + tombstones).
    pub fn to_bytes(&self) -> Bytes {
        let (params, store, nodes, entry, live) = self.raw_parts();
        let mut buf = BytesMut::with_capacity(64 + store.raw().len() * 8);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(store.dim() as u64);
        buf.put_u64_le(params.m as u64);
        buf.put_u64_le(params.m0 as u64);
        buf.put_u64_le(params.ef_construction as u64);
        buf.put_u8(params.extend_candidates as u8);
        buf.put_u8(params.keep_pruned as u8);
        buf.put_u64_le(params.seed);
        buf.put_u64_le(entry.map_or(u64::MAX, |e| e as u64));
        buf.put_u64_le(live as u64);
        buf.put_u64_le(nodes.len() as u64);
        for v in store.raw() {
            buf.put_f64_le(*v);
        }
        for (links, deleted) in &nodes {
            buf.put_u8(*deleted as u8);
            buf.put_u32_le(links.len() as u32);
            for layer in links {
                buf.put_u32_le(layer.len() as u32);
                for id in layer {
                    buf.put_u32_le(*id);
                }
            }
        }
        buf.freeze()
    }

    /// Restores an index serialized by [`Hnsw::to_bytes`].
    pub fn from_bytes(mut data: Bytes) -> Result<Self, SnapshotError> {
        if data.remaining() < 8 || &data.copy_to_bytes(4)[..] != MAGIC {
            return Err(SnapshotError::BadHeader);
        }
        if data.get_u32_le() != VERSION {
            return Err(SnapshotError::BadHeader);
        }
        let need = |data: &Bytes, n: usize| {
            if data.remaining() < n {
                Err(SnapshotError::Truncated)
            } else {
                Ok(())
            }
        };
        need(&data, 8 * 7 + 2)?;
        let dim = data.get_u64_le() as usize;
        let params = HnswParams {
            m: data.get_u64_le() as usize,
            m0: data.get_u64_le() as usize,
            ef_construction: data.get_u64_le() as usize,
            extend_candidates: data.get_u8() != 0,
            keep_pruned: data.get_u8() != 0,
            seed: data.get_u64_le(),
        };
        let entry_raw = data.get_u64_le();
        let live = data.get_u64_le() as usize;
        let n_nodes = data.get_u64_le() as usize;
        need(&data, n_nodes * dim * 8)?;
        let mut raw = Vec::with_capacity(n_nodes * dim);
        for _ in 0..n_nodes * dim {
            raw.push(data.get_f64_le());
        }
        let store = VecStore::from_raw(dim.max(1), raw);
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            need(&data, 5)?;
            let deleted = data.get_u8() != 0;
            let n_layers = data.get_u32_le() as usize;
            let mut links = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                need(&data, 4)?;
                let len = data.get_u32_le() as usize;
                need(&data, len * 4)?;
                links.push((0..len).map(|_| data.get_u32_le()).collect());
            }
            nodes.push((links, deleted));
        }
        let entry = if entry_raw == u64::MAX { None } else { Some(entry_raw as u32) };
        Ok(Hnsw::from_raw_parts(params, store, nodes, entry, live))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::{seeded_rng, uniform_vec};

    #[test]
    fn roundtrip_preserves_results() {
        let mut rng = seeded_rng(71);
        let pts: Vec<Vec<f64>> = (0..300).map(|_| uniform_vec(&mut rng, 8, -1.0, 1.0)).collect();
        let mut index = Hnsw::build(8, HnswParams::default(), &pts);
        index.delete(5);
        let bytes = index.to_bytes();
        let restored = Hnsw::from_bytes(bytes).unwrap();
        assert_eq!(restored.len(), index.len());
        assert!(restored.is_deleted(5));
        for q in pts.iter().take(10) {
            let a: Vec<u32> = index.search(q, 5, 40).iter().map(|n| n.id).collect();
            let b: Vec<u32> = restored.search(q, 5, 40).iter().map(|n| n.id).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            Hnsw::from_bytes(Bytes::from_static(b"nope")).unwrap_err(),
            SnapshotError::BadHeader
        );
        let mut good = Hnsw::build(2, HnswParams::default(), &[vec![0.0, 1.0]]).to_bytes().to_vec();
        good.truncate(good.len() - 3);
        assert_eq!(Hnsw::from_bytes(Bytes::from(good)).unwrap_err(), SnapshotError::Truncated);
    }
}
