//! NSG — the **Navigating Spreading-out Graph** (Fu et al., PVLDB 2019).
//!
//! The reproduced paper (Section V-A) notes its privacy-preserving index
//! "can leverage other proximity graph-based approaches for k-ANNS like the
//! navigating spreading-out graph … to substitute HNSW". This module
//! provides that substitute, built from scratch:
//!
//! 1. an approximate kNN graph is bootstrapped with an [`Hnsw`] index,
//! 2. the *navigating node* is the vector closest to the dataset centroid,
//! 3. each node's edges are chosen by the MRNG rule over (search path ∪
//!    kNN) candidates — an edge to `p` survives only if no already-selected
//!    neighbor is closer to `p` than the node is,
//! 4. a DFS pass reconnects any node unreachable from the navigating node.
//!
//! Search is single-entry greedy best-first with a bounded pool, as in the
//! original. The `graph_substitution` benchmark compares NSG and HNSW as
//! the filter index over SAP ciphertexts.

use crate::graph::{Hnsw, Neighbor};
use crate::params::HnswParams;
use crate::scratch::{ScratchPool, SearchScratch};
use crate::store::VecStore;
use ppann_linalg::vector::squared_euclidean;

/// NSG construction/search parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NsgParams {
    /// Degree of the bootstrap kNN graph.
    pub k_graph: usize,
    /// Maximum out-degree of the final graph (the paper's `R`).
    pub r: usize,
    /// Search-pool width used while building (the paper's `L`).
    pub l_build: usize,
    /// Seed for the bootstrap index.
    pub seed: u64,
}

impl Default for NsgParams {
    fn default() -> Self {
        Self { k_graph: 32, r: 32, l_build: 64, seed: 0x0536 }
    }
}

/// A navigating spreading-out graph over squared-Euclidean space.
pub struct Nsg {
    store: VecStore,
    adjacency: Vec<Vec<u32>>,
    navigating: u32,
    params: NsgParams,
}

impl Nsg {
    /// Builds an NSG over `vectors`.
    ///
    /// # Panics
    /// Panics on an empty dataset or invalid parameters.
    pub fn build(dim: usize, params: NsgParams, vectors: &[Vec<f64>]) -> Self {
        assert!(!vectors.is_empty(), "NSG requires a non-empty dataset");
        assert!(params.r >= 2 && params.k_graph >= 2 && params.l_build >= params.r);
        let store = VecStore::from_vectors(dim, vectors);
        let n = vectors.len();

        // 1. Bootstrap kNN graph through HNSW (parallel-free, deterministic).
        let boot =
            Hnsw::build(dim, HnswParams { seed: params.seed, ..HnswParams::default() }, vectors);
        let knn: Vec<Vec<Neighbor>> = (0..n)
            .map(|i| {
                boot.search(store.get(i as u32), params.k_graph + 1, params.l_build)
                    .into_iter()
                    .filter(|nb| nb.id != i as u32)
                    .take(params.k_graph)
                    .collect()
            })
            .collect();

        // 2. Navigating node: closest to the centroid.
        let mut centroid = vec![0.0; dim];
        for v in vectors {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }
        let navigating = (0..n as u32)
            .min_by(|&a, &b| {
                squared_euclidean(store.get(a), &centroid)
                    .partial_cmp(&squared_euclidean(store.get(b), &centroid))
                    .expect("no NaN")
            })
            .expect("nonempty");

        // 3. Edge selection per node: candidates = greedy path from the
        // navigating node (on the kNN graph) ∪ the node's own kNN list,
        // filtered by the MRNG rule.
        let knn_adj: Vec<Vec<u32>> =
            knn.iter().map(|l| l.iter().map(|nb| nb.id).collect()).collect();
        let mut adjacency: Vec<Vec<u32>> = Vec::with_capacity(n);
        let mut scratch = SearchScratch::default();
        for v in 0..n as u32 {
            let target = store.get(v).to_vec();
            // Candidates: the *entire* visited set of a build-time search
            // plus the node's own kNN list — the original NSG recipe.
            let mut candidates: Vec<Neighbor> = Vec::new();
            greedy_pool(
                &store,
                &knn_adj,
                navigating,
                &target,
                params.l_build,
                &mut scratch,
                Some(&mut candidates),
            );
            for nb in &knn[v as usize] {
                candidates.push(*nb);
            }
            candidates.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("no NaN"));
            candidates.dedup_by_key(|nb| nb.id);

            let mut selected: Vec<Neighbor> = Vec::with_capacity(params.r);
            let mut pruned: Vec<Neighbor> = Vec::new();
            for cand in candidates {
                if cand.id == v {
                    continue;
                }
                if selected.len() >= params.r {
                    break;
                }
                let cand_vec = store.get(cand.id);
                let ok = selected
                    .iter()
                    .all(|s| squared_euclidean(cand_vec, store.get(s.id)) > cand.dist);
                if ok {
                    selected.push(cand);
                } else {
                    pruned.push(cand);
                }
            }
            // Back-fill to R with the closest pruned candidates so the
            // graph keeps enough fan-out for navigability.
            for cand in pruned {
                if selected.len() >= params.r {
                    break;
                }
                selected.push(cand);
            }
            adjacency.push(selected.into_iter().map(|nb| nb.id).collect());
        }

        // Reverse-edge pass: offer every edge (v → p) back to p. When p is
        // at capacity, the union of its neighbors and v is re-pruned with
        // the same MRNG rule — never a plain drop-farthest, which would
        // strip exactly the long-range "spreading-out" edges that make the
        // graph navigable across clusters.
        let edges: Vec<(u32, u32)> = adjacency
            .iter()
            .enumerate()
            .flat_map(|(v, links)| links.iter().map(move |&p| (v as u32, p)))
            .collect();
        for (v, p) in edges {
            if adjacency[p as usize].contains(&v) {
                continue;
            }
            if adjacency[p as usize].len() < params.r {
                adjacency[p as usize].push(v);
                continue;
            }
            let pv = store.get(p).to_vec();
            let mut union: Vec<Neighbor> = adjacency[p as usize]
                .iter()
                .map(|&x| Neighbor { id: x, dist: squared_euclidean(store.get(x), &pv) })
                .collect();
            union.push(Neighbor { id: v, dist: squared_euclidean(store.get(v), &pv) });
            union.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("no NaN"));
            let mut selected: Vec<Neighbor> = Vec::with_capacity(params.r);
            let mut pruned: Vec<Neighbor> = Vec::new();
            for cand in union {
                if selected.len() >= params.r {
                    break;
                }
                let cand_vec = store.get(cand.id);
                let ok = selected
                    .iter()
                    .all(|s| squared_euclidean(cand_vec, store.get(s.id)) > cand.dist);
                if ok {
                    selected.push(cand);
                } else {
                    pruned.push(cand);
                }
            }
            for cand in pruned {
                if selected.len() >= params.r {
                    break;
                }
                selected.push(cand);
            }
            adjacency[p as usize] = selected.into_iter().map(|nb| nb.id).collect();
        }

        let mut nsg = Self { store, adjacency, navigating, params };
        nsg.ensure_connectivity();
        nsg
    }

    /// DFS from the navigating node; attach every unreachable node to its
    /// nearest reachable neighbor (the NSG "tree grafting" pass).
    fn ensure_connectivity(&mut self) {
        let n = self.adjacency.len();
        let mut reachable = vec![false; n];
        let mut stack = vec![self.navigating];
        reachable[self.navigating as usize] = true;
        while let Some(v) = stack.pop() {
            for &nb in &self.adjacency[v as usize] {
                if !reachable[nb as usize] {
                    reachable[nb as usize] = true;
                    stack.push(nb);
                }
            }
        }
        for u in 0..n as u32 {
            if reachable[u as usize] {
                continue;
            }
            // Nearest reachable node adopts u.
            let uv = self.store.get(u).to_vec();
            let parent = (0..n as u32)
                .filter(|&x| reachable[x as usize])
                .min_by(|&a, &b| {
                    squared_euclidean(self.store.get(a), &uv)
                        .partial_cmp(&squared_euclidean(self.store.get(b), &uv))
                        .expect("no NaN")
                })
                .expect("navigating node is always reachable");
            self.adjacency[parent as usize].push(u);
            // Everything reachable through u is now reachable.
            let mut stack = vec![u];
            reachable[u as usize] = true;
            while let Some(v) = stack.pop() {
                for &nb in &self.adjacency[v as usize] {
                    if !reachable[nb as usize] {
                        reachable[nb as usize] = true;
                        stack.push(nb);
                    }
                }
            }
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when empty (never: construction requires data).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The navigating (entry) node.
    pub fn navigating_node(&self) -> u32 {
        self.navigating
    }

    /// Out-degree bound `R`.
    pub fn params(&self) -> &NsgParams {
        &self.params
    }

    /// The underlying vector store.
    pub fn store(&self) -> &VecStore {
        &self.store
    }

    /// Neighbor list of `id`.
    pub fn links(&self, id: u32) -> &[u32] {
        &self.adjacency[id as usize]
    }

    /// Greedy best-first k-ANN search with pool width `l` (the NSG search
    /// routine), returning up to `k` hits closest-first.
    ///
    /// Borrows this thread's pooled scratch, so on a warm thread the only
    /// heap allocation is the returned `Vec`.
    pub fn search(&self, query: &[f64], k: usize, l: usize) -> Vec<Neighbor> {
        ScratchPool::with(|scratch| self.search_in(scratch, query, k, l).to_vec())
    }

    /// Allocation-free search variant: results are left in (and borrowed
    /// from) `scratch.out`, closest first. Output is identical for any
    /// scratch, warm or fresh.
    pub fn search_in<'s>(
        &self,
        scratch: &'s mut SearchScratch,
        query: &[f64],
        k: usize,
        l: usize,
    ) -> &'s [Neighbor] {
        greedy_pool(&self.store, &self.adjacency, self.navigating, query, l.max(k), scratch, None);
        scratch.out.truncate(k);
        &scratch.out
    }
}

/// Greedy best-first traversal over `adjacency` toward `target`, keeping a
/// pool of the best `l` nodes seen; leaves the pool in `scratch.out`,
/// sorted closest-first. When `record_visited` is supplied, every node
/// whose distance was evaluated is appended to it (the NSG build uses the
/// *full* visited set as edge candidates, not just the final pool).
///
/// Both stamp tables (`visited`, `expanded`) and the pool come from the
/// scratch, so a warm search allocates nothing.
fn greedy_pool(
    store: &VecStore,
    adjacency: &[Vec<u32>],
    entry: u32,
    target: &[f64],
    l: usize,
    scratch: &mut SearchScratch,
    mut record_visited: Option<&mut Vec<Neighbor>>,
) {
    let n = adjacency.len();
    let SearchScratch { visited, expanded, out: pool, .. } = scratch;
    visited.reset(n);
    expanded.reset(n);
    pool.clear();
    // Seed the pool with the navigating node plus up to `l − 1` points
    // spread evenly over the id space. The reference NSG implementation
    // initializes its search pool with *random* points for the same reason:
    // a single entry point strands greedy descent inside whichever region
    // it reaches first, while a scattered initial pool gives every region a
    // foothold (evenly-spaced ids keep it deterministic here).
    let seeds = std::iter::once(entry)
        .chain((0..l.saturating_sub(1).min(n)).map(|i| ((i * n) / l.max(1)) as u32));
    for id in seeds {
        if !visited.insert(id) {
            continue;
        }
        let nb = Neighbor { id, dist: squared_euclidean(store.get(id), target) };
        if let Some(rec) = record_visited.as_deref_mut() {
            rec.push(nb);
        }
        let at = pool.partition_point(|x| x.dist <= nb.dist);
        pool.insert(at, nb);
    }

    // Expand the closest unexpanded pool member until none remain.
    while let Some(pos) = pool.iter().position(|nb| !expanded.contains(nb.id)) {
        let current = pool[pos];
        expanded.insert(current.id);
        for &nb in &adjacency[current.id as usize] {
            if !visited.insert(nb) {
                continue;
            }
            let dist = squared_euclidean(store.get(nb), target);
            let cand = Neighbor { id: nb, dist };
            if let Some(rec) = record_visited.as_deref_mut() {
                rec.push(cand);
            }
            let worst = pool.last().expect("pool nonempty").dist;
            if pool.len() < l || dist < worst {
                let at = pool.partition_point(|x| x.dist <= dist);
                pool.insert(at, cand);
                if pool.len() > l {
                    pool.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::exact_knn_ids;
    use ppann_linalg::{seeded_rng, uniform_vec};
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded_rng(seed);
        let centers: Vec<Vec<f64>> =
            (0..8).map(|_| uniform_vec(&mut rng, dim, -1.0, 1.0)).collect();
        (0..n)
            .map(|_| {
                let c = &centers[rng.gen_range(0..centers.len())];
                c.iter().map(|x| x + rng.gen_range(-0.1..0.1)).collect()
            })
            .collect()
    }

    #[test]
    fn degree_bound_mostly_respected() {
        let pts = clustered(400, 8, 601);
        let nsg = Nsg::build(8, NsgParams::default(), &pts);
        // MRNG selection respects R; connectivity grafting may add a few.
        let over: usize = (0..400u32).filter(|&v| nsg.links(v).len() > nsg.params().r + 4).count();
        assert_eq!(over, 0);
    }

    #[test]
    fn recall_on_clustered_data() {
        // Void-separated synthetic clusters are adversarial for single-layer
        // monotonic graphs (no hierarchy to route across gaps), so the pool
        // width does the work — exactly the L-vs-recall trade-off of the
        // original NSG paper.
        let mut all = clustered(1540, 12, 602);
        let queries = all.split_off(1500);
        let pts = all;
        let nsg = Nsg::build(12, NsgParams::default(), &pts);
        let recall_at = |l: usize| {
            let mut hits = 0usize;
            for q in &queries {
                let truth = exact_knn_ids(nsg.store(), q, 10);
                let got: Vec<u32> = nsg.search(q, 10, l).iter().map(|nb| nb.id).collect();
                hits += truth.iter().filter(|t| got.contains(t)).count();
            }
            hits as f64 / (queries.len() * 10) as f64
        };
        let at_100 = recall_at(100);
        let at_400 = recall_at(400);
        assert!(at_100 > 0.8, "NSG recall@l=100 {at_100}");
        assert!(at_400 >= at_100, "recall must not degrade with larger pools");
        assert!(at_400 > 0.9, "NSG recall@l=400 {at_400}");
    }

    #[test]
    fn every_node_reachable_from_navigating() {
        let pts = clustered(300, 6, 604);
        let nsg = Nsg::build(6, NsgParams::default(), &pts);
        let mut seen = vec![false; 300];
        let mut stack = vec![nsg.navigating_node()];
        seen[nsg.navigating_node() as usize] = true;
        while let Some(v) = stack.pop() {
            for &nb in nsg.links(v) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    stack.push(nb);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "disconnected nodes remain");
    }

    #[test]
    fn single_point_dataset() {
        let nsg = Nsg::build(3, NsgParams::default(), &[vec![1.0, 2.0, 3.0]]);
        let hits = nsg.search(&[0.0, 0.0, 0.0], 5, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn finds_exact_match() {
        let pts = clustered(200, 4, 605);
        let nsg = Nsg::build(4, NsgParams::default(), &pts);
        for qi in [0usize, 50, 150] {
            let got = nsg.search(&pts[qi], 1, 40);
            assert_eq!(got[0].id, qi as u32);
        }
    }
}
