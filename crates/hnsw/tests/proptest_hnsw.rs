//! Property-based tests of the HNSW index: structural invariants must hold
//! for arbitrary data, parameters and maintenance sequences.

use ppann_hnsw::{exact_knn_ids, Hnsw, HnswParams, SearchScratch};
use proptest::prelude::*;

fn points(n: usize, d: usize, data: &[f64]) -> Vec<Vec<f64>> {
    (0..n).map(|i| data[i * d..(i + 1) * d].to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Results are deduplicated, live, sorted by true distance, ≤ k long.
    #[test]
    fn search_invariants(
        n in 2usize..80,
        d in 1usize..8,
        k in 1usize..12,
        data in proptest::collection::vec(-1.0f64..1.0, 80 * 8),
        q_seed in proptest::collection::vec(-1.0f64..1.0, 8),
    ) {
        let pts = points(n, d, &data);
        let index = Hnsw::build(d, HnswParams::default(), &pts);
        let q = &q_seed[..d];
        let hits = index.search(q, k, 40);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.len() == k.min(n));
        let mut ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        prop_assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist), "not sorted");
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len(), "duplicates returned");
    }

    /// On databases small enough to fit one layer-0 neighborhood, HNSW with
    /// a generous beam is exact.
    #[test]
    fn exact_on_tiny_databases(
        n in 2usize..30,
        d in 1usize..6,
        data in proptest::collection::vec(-1.0f64..1.0, 30 * 6),
        q_seed in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let pts = points(n, d, &data);
        let index = Hnsw::build(d, HnswParams::default(), &pts);
        let q = &q_seed[..d];
        let got: Vec<u32> = index.search(q, 5, n.max(30)).iter().map(|h| h.id).collect();
        let truth = exact_knn_ids(index.store(), q, 5);
        prop_assert_eq!(got, truth);
    }

    /// Deleted ids never come back; live count tracks maintenance.
    #[test]
    fn deletion_invariants(
        n in 5usize..50,
        d in 1usize..5,
        delete_mask in proptest::collection::vec(any::<bool>(), 50),
        data in proptest::collection::vec(-1.0f64..1.0, 50 * 5),
    ) {
        let pts = points(n, d, &data);
        let mut index = Hnsw::build(d, HnswParams::default(), &pts);
        let mut deleted = Vec::new();
        for (id, &kill) in delete_mask.iter().take(n).enumerate() {
            // Keep at least two nodes alive.
            if kill && index.len() > 2 {
                index.delete(id as u32);
                deleted.push(id as u32);
            }
        }
        prop_assert_eq!(index.len(), n - deleted.len());
        let q = &pts[0];
        let hits = index.search(q, n, 60);
        for h in &hits {
            prop_assert!(!deleted.contains(&h.id), "deleted id {} returned", h.id);
        }
    }

    /// Determinism contract of pooled scratch (DESIGN.md §6): a search
    /// through a dirty, previously used scratch is bitwise identical —
    /// same ids in the same order, same `f64` distance bits — to the same
    /// search through a fresh `SearchScratch::default()`. The dirty
    /// scratch is dragged across differently-sized graphs (large first,
    /// so its tables and heaps are oversized and full of stale state for
    /// the small one) and across deletions, whose tombstones the visited
    /// tables must not resurrect or suppress.
    #[test]
    fn scratch_parity(
        n_big in 20usize..60,
        n_small in 2usize..20,
        d in 1usize..6,
        k in 1usize..10,
        ef in 4usize..48,
        delete_mask in proptest::collection::vec(any::<bool>(), 60),
        data in proptest::collection::vec(-1.0f64..1.0, 60 * 6),
        queries in proptest::collection::vec(-1.0f64..1.0, 4 * 6),
    ) {
        let big_pts = points(n_big, d, &data);
        let small_pts = points(n_small, d, &data);
        let mut big = Hnsw::build(d, HnswParams::default(), &big_pts);
        let small = Hnsw::build(d, HnswParams::default(), &small_pts);

        let mut dirty = SearchScratch::default();
        for step in 0..4 {
            let q = &queries[step * d..(step + 1) * d];
            // Interleave deletions so later searches run over tombstones.
            if step == 2 {
                for (id, &kill) in delete_mask.iter().take(n_big).enumerate() {
                    if kill && big.len() > 2 {
                        big.delete(id as u32);
                    }
                }
            }
            // Alternate graphs: big warms the buffers past what small
            // needs, so small sees genuinely stale oversized state.
            for index in [&big, &small] {
                let reused: Vec<_> = index.search_in(&mut dirty, q, k, ef).to_vec();
                let fresh: Vec<_> =
                    index.search_in(&mut SearchScratch::default(), q, k, ef).to_vec();
                prop_assert_eq!(reused.len(), fresh.len(), "result count diverged");
                for (a, b) in reused.iter().zip(fresh.iter()) {
                    prop_assert_eq!(a.id, b.id, "id order diverged");
                    prop_assert_eq!(
                        a.dist.to_bits(), b.dist.to_bits(),
                        "distance bits diverged for id {}", a.id
                    );
                }
            }
        }
    }

    /// Serialization round-trips to an index with identical answers.
    #[test]
    fn snapshot_roundtrip(
        n in 2usize..40,
        d in 1usize..5,
        data in proptest::collection::vec(-1.0f64..1.0, 40 * 5),
    ) {
        let pts = points(n, d, &data);
        let index = Hnsw::build(d, HnswParams::default(), &pts);
        let restored = Hnsw::from_bytes(index.to_bytes()).unwrap();
        let q = &pts[n / 2];
        let a: Vec<u32> = index.search(q, 5, 30).iter().map(|h| h.id).collect();
        let b: Vec<u32> = restored.search(q, 5, 30).iter().map(|h| h.id).collect();
        prop_assert_eq!(a, b);
    }
}
