//! Property-based tests for the naive HNSW-over-DCE baseline: its
//! comparison-driven traversal must agree with plaintext graph search on
//! arbitrary inputs (the DCE oracle is exact, so any divergence would be a
//! traversal bug).

use ppann_baselines::naive_dce::{NaiveDce, NaiveDceParams};
use ppann_hnsw::HnswParams;
use ppann_linalg::seeded_rng;
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn naive_traversal_matches_plaintext_graph(
        n in 30usize..120,
        d in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let mut rng = seeded_rng(seed);
        let data: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let sys = NaiveDce::setup(
            NaiveDceParams { dim: d, hnsw: HnswParams::default(), seed },
            &data,
        );
        let qi = seed as usize % n;
        let trapdoor = sys.encrypt_query(&data[qi], seed);
        let out = sys.search(&trapdoor, 5, 40);
        // The query equals a database vector, so it must rank first.
        prop_assert_eq!(out.ids[0], qi as u32);
        prop_assert!(out.ids.len() <= 5);
        let mut dedup = out.ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), out.ids.len());
    }
}
