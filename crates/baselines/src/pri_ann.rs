//! **PRI-ANN** (Servan-Schreiber, Langowski, Devadas — S&P 2022; paper
//! baseline `[27]`): LSH buckets fetched through two-server PIR, with
//! user-side refinement.
//!
//! Protocol shape:
//! 1. The owner builds an LSH index; non-empty buckets become PIR blocks of
//!    candidate ids. A *public directory* maps `(table, bucket key)` to a
//!    block index — the directory reveals nothing about any specific query.
//! 2. The user hashes the query locally (it holds the LSH key material),
//!    looks up the block indices, and PIR-fetches its `L` buckets in one
//!    batched round.
//! 3. The user PIR-fetches the candidate vectors and refines locally.
//!
//! Faithfulness note (DESIGN.md §3): the original packs steps 2–3 into a
//! single round with a custom batched construction; this re-implementation
//! uses two batched PIR rounds (buckets, then vectors). Server scan cost,
//! communication volume and the user-side refinement burden — the quantities
//! Figures 7 and 9 compare — are equivalent.

use crate::cost::{BaselineOutcome, TriCost};
use crate::heap::ComparatorTopK;
use ppann_linalg::{seeded_rng, vector};
use ppann_lsh::{LshIndex, LshParams};
use ppann_pir::{PirCost, PirDatabase, TwoServerPir};
use std::collections::HashMap;
use std::time::Instant;

/// PRI-ANN parameters.
#[derive(Clone, Copy, Debug)]
pub struct PriAnnParams {
    /// Vector dimensionality.
    pub dim: usize,
    /// LSH configuration (key material shared owner → user).
    pub lsh: LshParams,
    /// Bucket block capacity (ids per bucket block; larger buckets are
    /// truncated, trading recall for block size, as in the original).
    pub bucket_capacity: usize,
    /// Cap on candidates refined per query.
    pub max_candidates: usize,
    /// Seed for PIR mask randomness.
    pub seed: u64,
}

/// The assembled PRI-ANN system.
pub struct PriAnn {
    params: PriAnnParams,
    /// User-side LSH hasher (same key material as the owner's index).
    hasher: LshIndex,
    /// Public directory: (table, bucket key) → bucket block index.
    directory: HashMap<(usize, u64), usize>,
    buckets: TwoServerPir,
    vectors: TwoServerPir,
    n: usize,
}

impl PriAnn {
    /// Owner-side setup: LSH index → bucket blocks + vector blocks.
    pub fn setup(params: PriAnnParams, data: &[Vec<f64>]) -> Self {
        let index = LshIndex::build(params.dim, params.lsh, data);
        let mut directory = HashMap::new();
        let mut bucket_blocks: Vec<Vec<u8>> = Vec::new();
        for (table, key, ids) in index.iter_buckets() {
            let mut block = Vec::with_capacity(4 + 4 * params.bucket_capacity);
            let take = ids.len().min(params.bucket_capacity);
            block.extend_from_slice(&(take as u32).to_le_bytes());
            for &id in &ids[..take] {
                block.extend_from_slice(&id.to_le_bytes());
            }
            directory.insert((table, key), bucket_blocks.len());
            bucket_blocks.push(block);
        }
        let vec_blocks: Vec<Vec<u8>> =
            data.iter().map(|v| v.iter().flat_map(|x| x.to_le_bytes()).collect()).collect();
        // An empty-but-valid bucket block keeps PIR well-defined on empty data.
        if bucket_blocks.is_empty() {
            bucket_blocks.push(vec![0u8; 4]);
        }
        Self {
            hasher: index,
            directory,
            buckets: TwoServerPir::new(PirDatabase::from_blocks(
                4 + 4 * params.bucket_capacity,
                &bucket_blocks,
            )),
            vectors: TwoServerPir::new(PirDatabase::from_blocks(
                (params.dim * 8).max(8),
                &vec_blocks,
            )),
            n: data.len(),
            params,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One query end to end.
    pub fn search(&self, q: &[f64], k: usize, query_seed: u64) -> BaselineOutcome {
        let mut rng = seeded_rng(self.params.seed ^ query_seed);
        let mut pir_cost = PirCost::default();
        let started = Instant::now();
        let mut server_time = std::time::Duration::ZERO;

        // User: hash locally, resolve block indices through the public
        // directory.
        let block_indices: Vec<usize> = (0..self.hasher.num_tables())
            .filter_map(|t| {
                let key = self.hasher.bucket_key(t, q);
                self.directory.get(&(t, key)).copied()
            })
            .collect();

        // Round 1: batched bucket fetch.
        let t0 = Instant::now();
        let bucket_blocks = self.buckets.retrieve_batch(&block_indices, &mut rng, &mut pir_cost);
        server_time += t0.elapsed();

        let mut candidates: Vec<u32> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        'outer: for block in &bucket_blocks {
            let count = u32::from_le_bytes(block[..4].try_into().expect("count")) as usize;
            for c in block[4..4 + 4 * count].chunks_exact(4) {
                let id = u32::from_le_bytes(c.try_into().expect("id"));
                if seen.insert(id) {
                    candidates.push(id);
                    if candidates.len() >= self.params.max_candidates {
                        break 'outer;
                    }
                }
            }
        }

        // Round 2: batched vector fetch for the candidates.
        let t1 = Instant::now();
        let vec_blocks = self.vectors.retrieve_batch(
            &candidates.iter().map(|&id| id as usize).collect::<Vec<_>>(),
            &mut rng,
            &mut pir_cost,
        );
        server_time += t1.elapsed();

        // User: exact refinement over the fetched plaintext vectors.
        let decoded: HashMap<u32, Vec<f64>> = candidates
            .iter()
            .zip(&vec_blocks)
            .map(|(&id, block)| {
                (
                    id,
                    block
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect(),
                )
            })
            .collect();
        let mut heap = ComparatorTopK::new(k, |a: u32, b: u32| {
            vector::squared_euclidean(&decoded[&a], q) > vector::squared_euclidean(&decoded[&b], q)
        });
        for &id in &candidates {
            heap.offer(id);
        }
        let ids = heap.into_sorted_ids();
        let user_time = started.elapsed().saturating_sub(server_time);

        BaselineOutcome {
            ids,
            cost: TriCost {
                server_time,
                user_time,
                bytes_up: pir_cost.bytes_up,
                bytes_down: pir_cost.bytes_down,
                rounds: pir_cost.rounds,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::uniform_vec;
    use rand::Rng;

    fn system(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, PriAnn) {
        let mut rng = seeded_rng(seed);
        let centers: Vec<Vec<f64>> =
            (0..8).map(|_| uniform_vec(&mut rng, dim, -1.0, 1.0)).collect();
        let data: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let c = &centers[rng.gen_range(0..centers.len())];
                c.iter().map(|x| x + rng.gen_range(-0.05..0.05)).collect()
            })
            .collect();
        let params = PriAnnParams {
            dim,
            lsh: LshParams::tuned(6, 16, seed, &data),
            bucket_capacity: 64,
            max_candidates: 256,
            seed,
        };
        let sys = PriAnn::setup(params, &data);
        (data, sys)
    }

    #[test]
    fn finds_identical_vector() {
        let (data, sys) = system(400, 8, 211);
        let out = sys.search(&data[31], 1, 0);
        assert_eq!(out.ids, vec![31]);
    }

    #[test]
    fn two_batched_rounds() {
        let (data, sys) = system(300, 8, 212);
        let out = sys.search(&data[0], 5, 1);
        assert_eq!(out.cost.rounds, 2, "one bucket round + one vector round");
        assert!(out.cost.bytes_down > 0);
    }

    #[test]
    fn empty_database_is_safe() {
        let params = PriAnnParams {
            dim: 4,
            lsh: LshParams { k: 2, l: 2, w: 1.0, seed: 1 },
            bucket_capacity: 8,
            max_candidates: 10,
            seed: 1,
        };
        let sys = PriAnn::setup(params, &[]);
        let out = sys.search(&[0.0; 4], 3, 0);
        assert!(out.ids.is_empty());
    }
}
