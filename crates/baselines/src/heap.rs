//! A bounded top-k max-heap over an arbitrary "is farther" comparator —
//! the refine-phase engine shared by HNSW-AME (AME comparisons) and the
//! user-side refinements (plaintext comparisons).

/// Bounded max-heap keyed by a caller-supplied comparator.
pub struct ComparatorTopK<F> {
    farther: F,
    capacity: usize,
    heap: Vec<u32>,
    comparisons: u64,
}

impl<F: FnMut(u32, u32) -> bool> ComparatorTopK<F> {
    /// `farther(a, b)` must return true iff candidate `a` ranks strictly
    /// worse (farther from the query) than `b`.
    pub fn new(capacity: usize, farther: F) -> Self {
        assert!(capacity > 0);
        Self { farther, capacity, heap: Vec::with_capacity(capacity + 1), comparisons: 0 }
    }

    /// Comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    fn farther(&mut self, a: u32, b: u32) -> bool {
        self.comparisons += 1;
        (self.farther)(a, b)
    }

    /// Offers one candidate.
    pub fn offer(&mut self, id: u32) {
        if self.heap.len() < self.capacity {
            self.heap.push(id);
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                let (a, b) = (self.heap[i], self.heap[parent]);
                if self.farther(a, b) {
                    self.heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else {
            let top = self.heap[0];
            if self.farther(top, id) {
                self.heap[0] = id;
                self.sift_down(0);
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len() {
                let (a, b) = (self.heap[l], self.heap[largest]);
                if self.farther(a, b) {
                    largest = l;
                }
            }
            if r < self.heap.len() {
                let (a, b) = (self.heap[r], self.heap[largest]);
                if self.farther(a, b) {
                    largest = r;
                }
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// Drains into ids ordered best (closest) first.
    pub fn into_sorted_ids(mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.heap.len());
        while !self.heap.is_empty() {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            out.push(self.heap.pop().expect("nonempty"));
            if !self.heap.is_empty() {
                self.sift_down(0);
            }
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_smallest_values() {
        let keys: Vec<f64> = vec![5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0];
        let mut heap = ComparatorTopK::new(3, |a: u32, b: u32| keys[a as usize] > keys[b as usize]);
        for id in 0..keys.len() as u32 {
            heap.offer(id);
        }
        assert_eq!(heap.into_sorted_ids(), vec![1, 5, 3]);
    }

    #[test]
    fn capacity_one() {
        let keys = [4.0, 2.0, 6.0];
        let mut heap = ComparatorTopK::new(1, |a: u32, b: u32| keys[a as usize] > keys[b as usize]);
        for id in 0..3 {
            heap.offer(id);
        }
        assert_eq!(heap.into_sorted_ids(), vec![1]);
    }
}
