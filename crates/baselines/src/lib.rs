//! # ppann-baselines
//!
//! The four baseline PP-ANNS systems the reproduced paper compares against
//! (Section VII-B), rebuilt end-to-end on this workspace's substrates:
//!
//! | Baseline | Index | Vector protection | Refinement | Paper ref |
//! |----------|-------|-------------------|------------|-----------|
//! | [`hnsw_ame::HnswAme`] | HNSW over DCPE | AME | server-side, O(d²)/comparison | §VII-B, Fig. 6 |
//! | [`rs_sann::RsSann`] | LSH | AES-128-CTR | **user-side** after bulk ciphertext download | ref. \[25\], Fig. 7 |
//! | [`pacm_ann::PacmAnn`] | proximity graph | PIR access hiding | **user-side**, multi-round graph walk | ref. \[45\], Fig. 7 |
//! | [`pri_ann::PriAnn`] | LSH | PIR access hiding | **user-side**, batched bucket fetch | ref. \[27\], Fig. 7 |
//!
//! Each system reports a [`TriCost`] (server time, user time, communication,
//! rounds) so the Figure 7/9 harness can print the same breakdowns the paper
//! does. Faithfulness notes for the PIR-based systems live in their module
//! docs; substitutions are catalogued in DESIGN.md §3.

pub mod cost;
pub mod heap;
pub mod hnsw_ame;
pub mod naive_dce;
pub mod pacm_ann;
pub mod pri_ann;
pub mod rs_sann;

pub use cost::{BaselineOutcome, TriCost};
pub use hnsw_ame::HnswAme;
pub use naive_dce::NaiveDce;
pub use pacm_ann::PacmAnn;
pub use pri_ann::PriAnn;
pub use rs_sann::RsSann;
