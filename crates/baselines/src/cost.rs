//! Cost accounting shared by every baseline (the axes of Figure 9).

use std::time::Duration;

/// Per-query cost split into the three buckets the paper reports:
/// server-side compute, user-side compute, and communication.
#[derive(Clone, Copy, Debug, Default)]
pub struct TriCost {
    /// Wall-clock time spent in server-side code.
    pub server_time: Duration,
    /// Wall-clock time spent in user-side code (hashing, decryption,
    /// distance computation, PIR decoding, …).
    pub user_time: Duration,
    /// Bytes travelling user → server(s).
    pub bytes_up: u64,
    /// Bytes travelling server(s) → user.
    pub bytes_down: u64,
    /// Communication rounds.
    pub rounds: u64,
}

impl TriCost {
    /// Total communication volume.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Accumulates another query's cost (for workload averages).
    pub fn absorb(&mut self, other: &TriCost) {
        self.server_time += other.server_time;
        self.user_time += other.user_time;
        self.bytes_up += other.bytes_up;
        self.bytes_down += other.bytes_down;
        self.rounds += other.rounds;
    }
}

/// The result of one baseline query.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// Returned neighbor ids, closest first.
    pub ids: Vec<u32>,
    /// Cost breakdown.
    pub cost: TriCost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums() {
        let mut a = TriCost { bytes_up: 5, bytes_down: 7, rounds: 1, ..Default::default() };
        a.absorb(&TriCost { bytes_up: 1, bytes_down: 2, rounds: 3, ..Default::default() });
        assert_eq!(a.bytes_up, 6);
        assert_eq!(a.bytes_down, 9);
        assert_eq!(a.rounds, 4);
        assert_eq!(a.total_bytes(), 15);
    }
}
