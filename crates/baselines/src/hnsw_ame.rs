//! **HNSW-AME** — the paper's own ablation baseline (Section VII-B,
//! Figure 6): identical privacy-preserving index and filter phase as the
//! main scheme (HNSW over DCPE/SAP ciphertexts), but the refine phase uses
//! AME secure comparisons at O(d²) each instead of DCE's O(d).

use crate::cost::{BaselineOutcome, TriCost};
use crate::heap::ComparatorTopK;
use ppann_ame::{distance_comp, AmeCiphertext, AmeSecretKey, AmeTrapdoor};
use ppann_dcpe::{SapEncryptor, SapKey};
use ppann_hnsw::{Hnsw, HnswParams};
use ppann_linalg::{seeded_rng, vector};
use std::time::Instant;

/// Parameters for the HNSW-AME system (matches the main scheme's knobs).
#[derive(Clone, Copy, Debug)]
pub struct HnswAmeParams {
    /// Vector dimensionality.
    pub dim: usize,
    /// SAP scaling factor.
    pub sap_s: f64,
    /// SAP noise budget β (normalized coordinates).
    pub sap_beta: f64,
    /// HNSW construction parameters.
    pub hnsw: HnswParams,
    /// Master seed.
    pub seed: u64,
}

/// An encrypted HNSW-AME query.
pub struct HnswAmeQuery {
    c_sap: Vec<f64>,
    trapdoor: AmeTrapdoor,
    k: usize,
    /// User-side time spent building this query (AME trapdoors are 16
    /// matrix sandwiches — significant, and part of Figure 9's user cost).
    user_time: std::time::Duration,
}

/// The assembled HNSW-AME system (owner keys + the server state).
pub struct HnswAme {
    params: HnswAmeParams,
    sap: SapEncryptor,
    ame: AmeSecretKey,
    norm_scale: f64,
    hnsw: Hnsw,
    ame_cts: Vec<AmeCiphertext>,
}

impl HnswAme {
    /// Builds the full system over a plaintext database (owner side: keygen,
    /// dual encryption, index construction).
    pub fn setup(params: HnswAmeParams, data: &[Vec<f64>]) -> Self {
        let mut rng = seeded_rng(params.seed);
        let max_abs = data.iter().map(|v| vector::max_abs(v)).fold(0.0f64, f64::max);
        let norm_scale = if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 };
        let sap = SapEncryptor::new(SapKey::new(params.sap_s, params.sap_beta));
        let ame = AmeSecretKey::generate(params.dim, &mut rng);

        let normalized: Vec<Vec<f64>> =
            data.iter().map(|v| vector::scaled(v, norm_scale)).collect();
        let sap_cts = sap.encrypt_batch(&normalized, params.seed ^ 0x5A9);
        let ame_cts = ppann_linalg::parallel_map_indexed(normalized.len(), |i| {
            let mut rng = seeded_rng(params.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ame.encrypt(&normalized[i], &mut rng)
        });
        let hnsw = Hnsw::build(params.dim, params.hnsw, &sap_cts);
        Self { params, sap, ame, norm_scale, hnsw, ame_cts }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.hnsw.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.hnsw.is_empty()
    }

    /// User-side query encryption (SAP ciphertext + AME trapdoor).
    pub fn encrypt_query(&self, q: &[f64], k: usize, seed: u64) -> HnswAmeQuery {
        let started = Instant::now();
        let mut rng = seeded_rng(self.params.seed ^ seed ^ 0x0E5);
        let normalized = vector::scaled(q, self.norm_scale);
        let c_sap = self.sap.encrypt(&normalized, &mut rng);
        let trapdoor = self.ame.trapdoor(&normalized, &mut rng);
        HnswAmeQuery { c_sap, trapdoor, k, user_time: started.elapsed() }
    }

    /// Filter-and-refine search: same filter as the main scheme, AME refine.
    pub fn search(
        &self,
        query: &HnswAmeQuery,
        k_prime: usize,
        ef_search: usize,
    ) -> BaselineOutcome {
        let started = Instant::now();
        let k_prime = k_prime.max(query.k);
        let candidates = self.hnsw.search(&query.c_sap, k_prime, ef_search.max(k_prime));

        let mut heap = ComparatorTopK::new(query.k, |a: u32, b: u32| {
            distance_comp(&self.ame_cts[a as usize], &self.ame_cts[b as usize], &query.trapdoor)
                > 0.0
        });
        for cand in &candidates {
            heap.offer(cand.id);
        }
        let ids = heap.into_sorted_ids();
        let trapdoor_bytes = 8 * query.trapdoor.len_scalars() as u64;
        BaselineOutcome {
            cost: TriCost {
                server_time: started.elapsed(),
                user_time: query.user_time,
                bytes_up: 8 * query.c_sap.len() as u64 + trapdoor_bytes + 8,
                bytes_down: 4 * ids.len() as u64,
                rounds: 1,
            },
            ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::uniform_vec;

    fn params(dim: usize) -> HnswAmeParams {
        HnswAmeParams { dim, sap_s: 1024.0, sap_beta: 0.0, hnsw: HnswParams::default(), seed: 5 }
    }

    #[test]
    fn exact_results_with_noiseless_filter() {
        let mut rng = seeded_rng(181);
        let data: Vec<Vec<f64>> = (0..150).map(|_| uniform_vec(&mut rng, 6, -1.0, 1.0)).collect();
        let system = HnswAme::setup(params(6), &data);
        let truth = ppann_datasets_truth(&data, &data[3], 5);
        let q = system.encrypt_query(&data[3], 5, 1);
        let out = system.search(&q, 30, 60);
        assert_eq!(out.ids, truth);
        assert!(out.cost.bytes_up > 8 * 6); // the trapdoor dominates
    }

    /// Local brute force (avoids a dev-dependency cycle with datasets).
    fn ppann_datasets_truth(base: &[Vec<f64>], q: &[f64], k: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..base.len() as u32).collect();
        ids.sort_by(|&a, &b| {
            vector::squared_euclidean(&base[a as usize], q)
                .partial_cmp(&vector::squared_euclidean(&base[b as usize], q))
                .unwrap()
        });
        ids.truncate(k);
        ids
    }

    #[test]
    fn ame_trapdoor_dominates_upload() {
        let mut rng = seeded_rng(182);
        let data: Vec<Vec<f64>> = (0..40).map(|_| uniform_vec(&mut rng, 4, -1.0, 1.0)).collect();
        let system = HnswAme::setup(params(4), &data);
        let q = system.encrypt_query(&data[0], 3, 2);
        let out = system.search(&q, 10, 20);
        // 16 matrices of (2d+6)² f64s ≫ the SAP vector.
        let n = 2 * 4 + 6;
        assert!(out.cost.bytes_up as usize >= 16 * n * n * 8);
    }
}
