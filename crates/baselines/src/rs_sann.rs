//! **RS-SANN** (Peng et al., Information Sciences 2017; paper baseline
//! `[25]`): AES-encrypted vectors behind an LSH index, with all exact
//! distance work pushed to the user.
//!
//! Protocol shape (reusable, single-interaction):
//! 1. The user hashes the query locally with the shared LSH key material and
//!    sends the `L` bucket keys (the "trapdoor").
//! 2. The server unions the candidate buckets and returns the candidates'
//!    AES-CTR ciphertexts.
//! 3. The user decrypts every candidate, computes exact distances, and keeps
//!    the top k.
//!
//! The characteristic costs the paper highlights — bulky downloads and heavy
//! user-side decryption — fall straight out of step 2 and 3.

use crate::cost::{BaselineOutcome, TriCost};
use crate::heap::ComparatorTopK;
use ppann_linalg::vector;
use ppann_lsh::{LshIndex, LshParams};
use ppann_softaes::{decrypt_f64_vector, encrypt_f64_vector, AesCtr};
use std::time::Instant;

/// RS-SANN parameters.
#[derive(Clone, Copy, Debug)]
pub struct RsSannParams {
    /// Vector dimensionality.
    pub dim: usize,
    /// LSH configuration (shared key material between owner and user).
    pub lsh: LshParams,
    /// Cap on candidates returned per query (the server truncates the
    /// union; more candidates ⇒ better recall, more user work).
    pub max_candidates: usize,
}

/// The assembled RS-SANN system.
pub struct RsSann {
    params: RsSannParams,
    /// Server state: the LSH index over (owner-hashed) vectors…
    lsh: LshIndex,
    /// …and the AES-CTR ciphertext of every vector, id-aligned.
    enc_vectors: Vec<Vec<u8>>,
    /// User state: the shared AES key.
    aes: AesCtr,
}

impl RsSann {
    /// Owner-side setup: encrypt every vector under AES-128-CTR and build
    /// the LSH index; both are shipped to the server.
    pub fn setup(params: RsSannParams, aes_key: [u8; 16], data: &[Vec<f64>]) -> Self {
        let aes = AesCtr::new(&aes_key);
        let enc_vectors =
            data.iter().enumerate().map(|(i, v)| encrypt_f64_vector(&aes, i as u64, v)).collect();
        let lsh = LshIndex::build(params.dim, params.lsh, data);
        Self { params, lsh, enc_vectors, aes }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.enc_vectors.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.enc_vectors.is_empty()
    }

    /// Runs one query end to end, reporting the id list and cost split.
    pub fn search(&self, q: &[f64], k: usize) -> BaselineOutcome {
        // --- user: hash the query into L bucket keys (the trapdoor).
        let user_started = Instant::now();
        let keys: Vec<u64> =
            (0..self.lsh.num_tables()).map(|t| self.lsh.bucket_key(t, q)).collect();
        let mut user_time = user_started.elapsed();

        // --- server: union buckets, cap, ship ciphertexts back.
        let server_started = Instant::now();
        let mut seen = std::collections::HashSet::new();
        let mut candidates: Vec<u32> = Vec::new();
        for (t, key) in keys.iter().enumerate() {
            for &id in self.lsh.bucket(t, *key) {
                if candidates.len() >= self.params.max_candidates {
                    break;
                }
                if seen.insert(id) {
                    candidates.push(id);
                }
            }
        }
        let payload: Vec<(u32, &[u8])> =
            candidates.iter().map(|&id| (id, self.enc_vectors[id as usize].as_slice())).collect();
        let server_time = server_started.elapsed();
        let bytes_down: u64 = payload.iter().map(|(_, ct)| 4 + ct.len() as u64).sum();

        // --- user: decrypt candidates, exact distances, top-k.
        let user_started = Instant::now();
        let decrypted: Vec<(u32, Vec<f64>)> = payload
            .iter()
            .map(|(id, ct)| (*id, decrypt_f64_vector(&self.aes, *id as u64, ct)))
            .collect();
        let mut heap = ComparatorTopK::new(k, |a: u32, b: u32| {
            let da = &decrypted.iter().find(|(id, _)| *id == a).expect("candidate").1;
            let db = &decrypted.iter().find(|(id, _)| *id == b).expect("candidate").1;
            vector::squared_euclidean(da, q) > vector::squared_euclidean(db, q)
        });
        for (id, _) in &decrypted {
            heap.offer(*id);
        }
        let ids = heap.into_sorted_ids();
        user_time += user_started.elapsed();

        BaselineOutcome {
            ids,
            cost: TriCost {
                server_time,
                user_time,
                bytes_up: 8 * keys.len() as u64 + 8,
                bytes_down,
                rounds: 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::{seeded_rng, uniform_vec};
    use rand::Rng;

    fn system(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, RsSann) {
        let mut rng = seeded_rng(seed);
        let centers: Vec<Vec<f64>> =
            (0..10).map(|_| uniform_vec(&mut rng, dim, -1.0, 1.0)).collect();
        let data: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let c = &centers[rng.gen_range(0..centers.len())];
                c.iter().map(|x| x + rng.gen_range(-0.05..0.05)).collect()
            })
            .collect();
        let params =
            RsSannParams { dim, lsh: LshParams::tuned(6, 16, seed, &data), max_candidates: 400 };
        let sys = RsSann::setup(params, [7u8; 16], &data);
        (data, sys)
    }

    #[test]
    fn finds_identical_vector() {
        let (data, sys) = system(500, 8, 191);
        let out = sys.search(&data[42], 1);
        assert_eq!(out.ids, vec![42]);
        assert_eq!(out.cost.rounds, 1);
    }

    #[test]
    fn download_scales_with_candidates() {
        let (data, sys) = system(500, 8, 192);
        let out = sys.search(&data[0], 5);
        // Each candidate costs 4 + 8·dim bytes downstream.
        assert!(out.cost.bytes_down >= out.ids.len() as u64 * (4 + 64));
        assert!(out.cost.user_time >= std::time::Duration::ZERO);
    }

    #[test]
    fn recall_reasonable_on_clustered_data() {
        let (data, sys) = system(1000, 8, 193);
        let mut hits = 0;
        for qi in 0..20 {
            let q = &data[qi];
            let mut ids: Vec<u32> = (0..data.len() as u32).collect();
            ids.sort_by(|&a, &b| {
                vector::squared_euclidean(&data[a as usize], q)
                    .partial_cmp(&vector::squared_euclidean(&data[b as usize], q))
                    .unwrap()
            });
            let truth = &ids[..5];
            let got = sys.search(q, 5).ids;
            hits += truth.iter().filter(|t| got.contains(t)).count();
        }
        let recall = hits as f64 / 100.0;
        assert!(recall > 0.6, "recall {recall} too low for clustered data");
    }
}
