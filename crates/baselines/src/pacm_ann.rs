//! **PACM-ANN** (Zhou, Shi, Fanti — "PACMANN"; paper baseline `[45]`):
//! user-driven graph search where every index/vector access is hidden behind
//! private information retrieval.
//!
//! Protocol shape (multi-round, user-controlled):
//! 1. The owner builds a proximity graph over the plaintext vectors; the
//!    graph's fixed-degree adjacency lists and the vectors are laid out as
//!    PIR blocks, replicated on two non-colluding servers.
//! 2. The user walks the graph greedily: each step PIR-fetches the adjacency
//!    blocks of the current beam, then PIR-fetches the newly discovered
//!    vectors, computes distances locally, and advances the beam.
//!
//! Faithfulness note (DESIGN.md §3): the original uses single-server PIR;
//! the substrate here is information-theoretic two-server PIR. The defining
//! cost behaviour — every fetch costs the servers a linear scan and the walk
//! needs many rounds — is identical.

use crate::cost::{BaselineOutcome, TriCost};
use ppann_hnsw::{Hnsw, HnswParams};
use ppann_linalg::{seeded_rng, vector};
use ppann_pir::{PirCost, PirDatabase, TwoServerPir};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// PACM-ANN parameters.
#[derive(Clone, Copy, Debug)]
pub struct PacmAnnParams {
    /// Vector dimensionality.
    pub dim: usize,
    /// Construction parameters of the underlying proximity graph.
    pub graph: HnswParams,
    /// Beam width of the user-side walk.
    pub beam: usize,
    /// Maximum walk rounds (each round = 2 PIR round-trips).
    pub max_rounds: usize,
    /// Seed for PIR mask randomness.
    pub seed: u64,
}

/// The assembled PACM-ANN system.
pub struct PacmAnn {
    params: PacmAnnParams,
    adjacency: TwoServerPir,
    vectors: TwoServerPir,
    entry: u32,
    degree: usize,
    n: usize,
}

impl PacmAnn {
    /// Owner-side setup: proximity graph + PIR block layout.
    pub fn setup(params: PacmAnnParams, data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "PACM-ANN requires a non-empty database");
        let graph = Hnsw::build(params.dim, params.graph, data);
        let degree = params.graph.m0;
        // Adjacency blocks: layer-0 neighbor ids, padded with u32::MAX.
        let adj_blocks: Vec<Vec<u8>> = (0..data.len() as u32)
            .map(|id| {
                let mut block = Vec::with_capacity(degree * 4);
                for &nb in graph.links(id, 0).iter().take(degree) {
                    block.extend_from_slice(&nb.to_le_bytes());
                }
                while block.len() < degree * 4 {
                    block.extend_from_slice(&u32::MAX.to_le_bytes());
                }
                block
            })
            .collect();
        // Vector blocks: raw little-endian f64 coordinates.
        let vec_blocks: Vec<Vec<u8>> =
            data.iter().map(|v| v.iter().flat_map(|x| x.to_le_bytes()).collect()).collect();
        let entry = graph.entry_point().expect("nonempty graph");
        Self {
            params,
            adjacency: TwoServerPir::new(PirDatabase::from_blocks(degree * 4, &adj_blocks)),
            vectors: TwoServerPir::new(PirDatabase::from_blocks(params.dim * 8, &vec_blocks)),
            entry,
            degree,
            n: data.len(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn decode_vector(&self, block: &[u8]) -> Vec<f64> {
        block.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
    }

    /// One query: the user walks the graph via PIR fetches. Server time is
    /// the wall time spent inside PIR answering; everything else (decoding,
    /// distances, beam management) is user time.
    pub fn search(&self, q: &[f64], k: usize, query_seed: u64) -> BaselineOutcome {
        let mut rng = seeded_rng(self.params.seed ^ query_seed);
        let mut pir_cost = PirCost::default();
        let started = Instant::now();
        let mut server_time = std::time::Duration::ZERO;

        // The user's local view: distance per fetched vector.
        let mut dist_of: HashMap<u32, f64> = HashMap::new();
        let mut visited: HashSet<u32> = HashSet::new();
        let mut expanded: HashSet<u32> = HashSet::new();

        // Bootstrap: fetch the (public) entry point's vector.
        let t = Instant::now();
        let entry_block = self.vectors.retrieve(self.entry as usize, &mut rng, &mut pir_cost);
        server_time += t.elapsed();
        visited.insert(self.entry);
        dist_of.insert(self.entry, vector::squared_euclidean(q, &self.decode_vector(&entry_block)));

        for _round in 0..self.params.max_rounds {
            // Pick the best `beam` non-expanded nodes.
            let mut frontier: Vec<u32> =
                dist_of.keys().copied().filter(|id| !expanded.contains(id)).collect();
            if frontier.is_empty() {
                break;
            }
            frontier.sort_by(|a, b| dist_of[a].partial_cmp(&dist_of[b]).expect("no NaN"));
            frontier.truncate(self.params.beam);

            // Round-trip 1: adjacency blocks of the beam.
            let t = Instant::now();
            let adj_blocks = self.adjacency.retrieve_batch(
                &frontier.iter().map(|&id| id as usize).collect::<Vec<_>>(),
                &mut rng,
                &mut pir_cost,
            );
            server_time += t.elapsed();
            let mut discovered: Vec<u32> = Vec::new();
            for (node, block) in frontier.iter().zip(&adj_blocks) {
                expanded.insert(*node);
                for c in block.chunks_exact(4).take(self.degree) {
                    let nb = u32::from_le_bytes(c.try_into().expect("4 bytes"));
                    if nb != u32::MAX && (nb as usize) < self.n && visited.insert(nb) {
                        discovered.push(nb);
                    }
                }
            }
            if discovered.is_empty() {
                continue;
            }
            // Round-trip 2: the newly discovered vectors.
            let t = Instant::now();
            let vec_blocks = self.vectors.retrieve_batch(
                &discovered.iter().map(|&id| id as usize).collect::<Vec<_>>(),
                &mut rng,
                &mut pir_cost,
            );
            server_time += t.elapsed();
            for (id, block) in discovered.iter().zip(&vec_blocks) {
                dist_of.insert(*id, vector::squared_euclidean(q, &self.decode_vector(block)));
            }
        }

        let mut ranked: Vec<(u32, f64)> = dist_of.into_iter().collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        let ids: Vec<u32> = ranked.iter().take(k).map(|(id, _)| *id).collect();
        let user_time = started.elapsed().saturating_sub(server_time);

        BaselineOutcome {
            ids,
            cost: TriCost {
                server_time,
                user_time,
                bytes_up: pir_cost.bytes_up,
                bytes_down: pir_cost.bytes_down,
                rounds: pir_cost.rounds,
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use ppann_linalg::uniform_vec;
    use rand::Rng;

    fn system(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, PacmAnn) {
        let mut rng = seeded_rng(seed);
        let centers: Vec<Vec<f64>> =
            (0..8).map(|_| uniform_vec(&mut rng, dim, -1.0, 1.0)).collect();
        let data: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let c = &centers[rng.gen_range(0..centers.len())];
                c.iter().map(|x| x + rng.gen_range(-0.1..0.1)).collect()
            })
            .collect();
        let params =
            PacmAnnParams { dim, graph: HnswParams::default(), beam: 4, max_rounds: 12, seed };
        let sys = PacmAnn::setup(params, &data);
        (data, sys)
    }

    #[test]
    fn walk_reaches_the_nearest_neighbor() {
        let (data, sys) = system(400, 6, 201);
        let out = sys.search(&data[17], 1, 0);
        assert_eq!(out.ids, vec![17]);
    }

    #[test]
    fn costs_reflect_pir_scans() {
        let (data, sys) = system(300, 6, 202);
        let out = sys.search(&data[0], 5, 1);
        // Multi-round by construction, with real PIR traffic.
        assert!(out.cost.rounds > 2, "rounds {}", out.cost.rounds);
        assert!(out.cost.bytes_up > 0 && out.cost.bytes_down > 0);
        assert_eq!(out.ids.len(), 5);
    }

    #[test]
    fn recall_improves_with_beam_width() {
        let (data, _) = system(600, 6, 203);
        let narrow = PacmAnn::setup(
            PacmAnnParams { dim: 6, graph: HnswParams::default(), beam: 1, max_rounds: 3, seed: 1 },
            &data,
        );
        let wide = PacmAnn::setup(
            PacmAnnParams {
                dim: 6,
                graph: HnswParams::default(),
                beam: 8,
                max_rounds: 12,
                seed: 1,
            },
            &data,
        );
        let truth = |q: &[f64], k: usize| {
            let mut ids: Vec<u32> = (0..data.len() as u32).collect();
            ids.sort_by(|&a, &b| {
                vector::squared_euclidean(&data[a as usize], q)
                    .partial_cmp(&vector::squared_euclidean(&data[b as usize], q))
                    .unwrap()
            });
            ids.truncate(k);
            ids
        };
        let mut narrow_hits = 0;
        let mut wide_hits = 0;
        for qi in 0..10 {
            let t = truth(&data[qi], 10);
            narrow_hits += t
                .iter()
                .filter(|x| narrow.search(&data[qi], 10, qi as u64).ids.contains(x))
                .count();
            wide_hits +=
                t.iter().filter(|x| wide.search(&data[qi], 10, qi as u64).ids.contains(x)).count();
        }
        assert!(wide_hits >= narrow_hits, "wide {wide_hits} < narrow {narrow_hits}");
    }
}
