//! **Naive HNSW-over-DCE** — the strawman design the paper's introduction
//! rejects before proposing the filter-and-refine scheme: the owner builds
//! an HNSW graph on *plaintext* neighborhoods and ships (graph structure +
//! DCE ciphertexts) to the server, which traverses the graph using DCE
//! comparisons only.
//!
//! It is functionally correct (comparison-driven beam search, see
//! `ppann_hnsw::Hnsw::search_by_comparison`) but pays the two costs the
//! paper names: (1) the graph edges expose *exact* neighbor relationships,
//! and (2) every traversal step costs a DCE comparison (`4d + 32` MACs)
//! instead of a SAP distance (`d` MACs). The ablation harness measures (2)
//! directly against the real scheme.

use crate::cost::{BaselineOutcome, TriCost};
use ppann_dce::{distance_comp, DceCiphertext, DceSecretKey, DceTrapdoor};
use ppann_hnsw::{Hnsw, HnswParams};
use ppann_linalg::{seeded_rng, vector};
use std::time::Instant;

/// Parameters of the naive system.
#[derive(Clone, Copy, Debug)]
pub struct NaiveDceParams {
    /// Vector dimensionality.
    pub dim: usize,
    /// HNSW construction parameters (built on plaintext!).
    pub hnsw: HnswParams,
    /// Master seed.
    pub seed: u64,
}

/// The assembled naive system (owner key + server state).
pub struct NaiveDce {
    params: NaiveDceParams,
    dce: DceSecretKey,
    norm_scale: f64,
    /// Server state: the plaintext-built graph (structure only is used at
    /// query time) and the DCE ciphertexts.
    graph: Hnsw,
    ciphertexts: Vec<DceCiphertext>,
}

impl NaiveDce {
    /// Owner-side setup.
    pub fn setup(params: NaiveDceParams, data: &[Vec<f64>]) -> Self {
        let mut rng = seeded_rng(params.seed);
        let max_abs = data.iter().map(|v| vector::max_abs(v)).fold(0.0f64, f64::max);
        let norm_scale = if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 };
        let normalized: Vec<Vec<f64>> =
            data.iter().map(|v| vector::scaled(v, norm_scale)).collect();
        let dce = DceSecretKey::generate(params.dim, &mut rng);
        let ciphertexts = dce.encrypt_batch(&normalized, params.seed ^ 0x0A17E);
        let graph = Hnsw::build(params.dim, params.hnsw, &normalized);
        Self { params, dce, norm_scale, graph, ciphertexts }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// User-side query encryption: one DCE trapdoor.
    pub fn encrypt_query(&self, q: &[f64], seed: u64) -> DceTrapdoor {
        let mut rng = seeded_rng(self.params.seed ^ seed ^ 0x7777);
        self.dce.trapdoor(&vector::scaled(q, self.norm_scale), &mut rng)
    }

    /// Server-side search: comparison-driven HNSW traversal where each
    /// ordering decision is one DCE `DistanceComp`.
    pub fn search(&self, trapdoor: &DceTrapdoor, k: usize, ef: usize) -> BaselineOutcome {
        let started = Instant::now();
        let mut comparisons = 0u64;
        let ids = self.graph.search_by_comparison(k, ef, |a, b| {
            comparisons += 1;
            distance_comp(&self.ciphertexts[a as usize], &self.ciphertexts[b as usize], trapdoor)
                < 0.0
        });
        BaselineOutcome {
            ids,
            cost: TriCost {
                server_time: started.elapsed(),
                user_time: std::time::Duration::ZERO,
                bytes_up: 8 * trapdoor.dim() as u64 + 8,
                bytes_down: 4 * k as u64,
                rounds: 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppann_linalg::uniform_vec;

    #[test]
    fn naive_search_is_accurate() {
        let mut rng = seeded_rng(411);
        let data: Vec<Vec<f64>> = (0..300).map(|_| uniform_vec(&mut rng, 8, -1.0, 1.0)).collect();
        let sys =
            NaiveDce::setup(NaiveDceParams { dim: 8, hnsw: HnswParams::default(), seed: 1 }, &data);
        let t = sys.encrypt_query(&data[42], 0);
        let out = sys.search(&t, 1, 40);
        assert_eq!(out.ids, vec![42]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // qi doubles as the query nonce
    fn top_k_matches_plaintext_graph_search() {
        let mut rng = seeded_rng(412);
        let data: Vec<Vec<f64>> = (0..250).map(|_| uniform_vec(&mut rng, 6, -1.0, 1.0)).collect();
        let sys =
            NaiveDce::setup(NaiveDceParams { dim: 6, hnsw: HnswParams::default(), seed: 2 }, &data);
        for qi in 0..5 {
            let t = sys.encrypt_query(&data[qi], qi as u64);
            let secure = sys.search(&t, 10, 50).ids;
            // Same graph, plaintext distances (normalization preserves order).
            let plain: Vec<u32> = sys
                .graph
                .search(&ppann_linalg::vector::scaled(&data[qi], sys.norm_scale), 10, 50)
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(secure, plain, "query {qi}");
        }
    }
}
